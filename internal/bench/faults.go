package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// FaultDataset is the fault-recovery smoke dataset: the scale-16
// R-MAT (a scale-12 stand-in under -small, matching CI's budget).
func FaultDataset(small bool) *Dataset {
	if small {
		return rmatDS("rmat12f", "fault-recovery smoke (small)", 12, 8, 99)
	}
	return rmatDS("rmat16f", "fault-recovery smoke", 16, 8, 99)
}

// FaultScenarios lists the scenario IDs RunFaultsJSON measures, in
// report order. Each row times a full fixed-iteration PageRank;
// comparing a recovery row's ns_per_step against pagerank-clean gives
// that fault's end-to-end recovery overhead.
func FaultScenarios() []string {
	return []string{
		"pagerank-clean",
		"pagerank-checkpointed",
		"pagerank-cancel-resume",
		"pagerank-nan-rollback",
		"pagerank-panic-retry",
	}
}

// RunFaultsJSON measures PageRank wall time on the fused iHTL engine
// under the fault-tolerance machinery: clean, checkpointing-only, and
// three seeded fault-and-recover scenarios (mid-run cancel + resume, a
// NaN absorbed by HealthRollback, a worker panic retried from the last
// checkpoint). Faults land at seed-derived iterations via the
// deterministic injection harness, so a given (dataset, seed) run is
// reproducible. Every recovered run's ranks are checked against the
// clean run before its row is emitted — a scenario that "recovers"
// into wrong results fails the whole report.
func RunFaultsJSON(env *Env, d *Dataset, seed uint64) (*StepReport, error) {
	g, err := d.Load()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Name, err)
	}
	ih, err := core.BuildWith(g, env.ihtlParams(), env.Pool)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(ih, env.Pool)
	if err != nil {
		return nil, err
	}
	he, err := core.NewEngineOpts(ih, env.Pool, core.EngineOptions{
		Health: spmv.HealthPolicy{Mode: spmv.HealthRollback},
	})
	if err != nil {
		return nil, err
	}
	deg := make([]int, g.NumV)
	for nv := 0; nv < g.NumV; nv++ {
		deg[nv] = g.OutDegree(ih.OldID[nv])
	}

	// Enough iterations that a mid-run fault has room on both sides.
	iters := 4 * env.Iters
	if iters < 8 {
		iters = 8
	}
	// faultIter is the seed-derived iteration the fault lands in.
	faultIter := 1 + faultinject.SeededAfter(seed, "bench.fault-iter", int64(iters-2))
	opts := func() analytics.PageRankOptions {
		return analytics.PageRankOptions{MaxIters: iters, Tol: -1}
	}

	rep := &StepReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      iters,
		Host:       CollectHost(env.Pool.Workers()),
	}
	emit := func(scenario string, elapsed time.Duration) {
		ns := elapsed.Nanoseconds() / int64(iters)
		rep.Results = append(rep.Results, StepResult{
			Dataset:   d.Name,
			Kernel:    scenario,
			Vertices:  g.NumV,
			Edges:     g.NumE,
			NsPerStep: ns,
			NsPerEdge: float64(ns) / float64(g.NumE),
		})
	}

	// pagerank-clean: the baseline every recovery row is read against.
	start := time.Now()
	clean, err := analytics.RunPageRankCtx(nil, e, deg, env.Pool, opts())
	if err != nil {
		return nil, fmt.Errorf("pagerank-clean: %w", err)
	}
	emit("pagerank-clean", time.Since(start))
	verify := func(scenario string, ranks []float64) error {
		for v := range clean.Ranks {
			if math.Abs(ranks[v]-clean.Ranks[v]) > 1e-9*(1+math.Abs(clean.Ranks[v])) {
				return fmt.Errorf("%s: recovered rank[%d] = %g, clean %g", scenario, v, ranks[v], clean.Ranks[v])
			}
		}
		return nil
	}

	// pagerank-checkpointed: no faults — isolates the per-iteration
	// snapshot cost from the recovery costs below.
	o := opts()
	o.CheckpointEvery = 1
	start = time.Now()
	if _, err := analytics.RunPageRankCtx(nil, e, deg, env.Pool, o); err != nil {
		return nil, fmt.Errorf("pagerank-checkpointed: %w", err)
	}
	emit("pagerank-checkpointed", time.Since(start))

	// pagerank-cancel-resume: cancel at the fault iteration, then
	// resume from the checkpoint taken there; the row times both runs.
	ctx, cancel := context.WithCancel(context.Background())
	var ckpt *analytics.Checkpoint
	o = opts()
	o.CheckpointEvery = 1
	o.OnCheckpoint = func(c *analytics.Checkpoint) {
		if int64(c.Iter) == faultIter {
			ckpt = c.Clone()
			cancel()
		}
	}
	start = time.Now()
	_, rerr := analytics.RunPageRankCtx(ctx, e, deg, env.Pool, o)
	cancel()
	if !errors.Is(rerr, context.Canceled) || ckpt == nil {
		return nil, fmt.Errorf("pagerank-cancel-resume: cancel at iter %d did not take (err %v)", faultIter, rerr)
	}
	o = opts()
	o.Resume = ckpt
	res, err := analytics.RunPageRankCtx(nil, e, deg, env.Pool, o)
	if err != nil {
		return nil, fmt.Errorf("pagerank-cancel-resume: %w", err)
	}
	emit("pagerank-cancel-resume", time.Since(start))
	if err := verify("pagerank-cancel-resume", res.Ranks); err != nil {
		return nil, err
	}

	// pagerank-nan-rollback: poison the health watchdog once, inside
	// the fault iteration; HealthRollback plus per-iteration
	// checkpoints must absorb it. The watchdog's poison hook fires once
	// per scan range, so a one-step probe calibrates hits-per-step.
	probe := faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN, After: 1 << 60,
	})
	faultinject.Activate(probe)
	if err := he.StepCtx(nil, clean.Ranks, make([]float64, g.NumV)); err != nil {
		faultinject.Deactivate()
		return nil, fmt.Errorf("health probe: %w", err)
	}
	faultinject.Deactivate()
	healthPerStep := probe.Hits(faultinject.SiteStepHealth)
	o = opts()
	o.CheckpointEvery = 1
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteStepHealth, Kind: faultinject.NaN,
		After: faultIter * healthPerStep, Times: 1,
	}))
	start = time.Now()
	res, err = analytics.RunPageRankCtx(nil, he, deg, env.Pool, o)
	faultinject.Deactivate()
	if err != nil {
		return nil, fmt.Errorf("pagerank-nan-rollback: %w", err)
	}
	if res.Rollbacks < 1 {
		return nil, fmt.Errorf("pagerank-nan-rollback: fault at iter %d never rolled back", faultIter)
	}
	emit("pagerank-nan-rollback", time.Since(start))
	if err := verify("pagerank-nan-rollback", res.Ranks); err != nil {
		return nil, err
	}

	// pagerank-panic-retry: kill a worker mid-Step at a seeded flipped-
	// task claim inside the fault iteration, then retry from the last
	// checkpoint at the driver level — the recovery loop an application
	// embedding the engine would run.
	probe = faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteFlippedTask, Kind: faultinject.Panic, After: 1 << 60,
	})
	faultinject.Activate(probe)
	if err := e.StepCtx(nil, clean.Ranks, make([]float64, g.NumV)); err != nil {
		faultinject.Deactivate()
		return nil, fmt.Errorf("task probe: %w", err)
	}
	faultinject.Deactivate()
	tasksPerStep := probe.Hits(faultinject.SiteFlippedTask)
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteFlippedTask, Kind: faultinject.Panic,
		After: faultIter*tasksPerStep + tasksPerStep/2, Times: 1,
	}))
	start = time.Now()
	ckpt = nil
	o = opts()
	o.CheckpointEvery = 1
	o.OnCheckpoint = func(c *analytics.Checkpoint) { ckpt = c.Clone() }
	res, rerr = analytics.RunPageRankCtx(nil, e, deg, env.Pool, o)
	var perr *sched.PanicError
	if !errors.As(rerr, &perr) || ckpt == nil {
		faultinject.Deactivate()
		return nil, fmt.Errorf("pagerank-panic-retry: fault at iter %d did not surface a PanicError (err %v)", faultIter, rerr)
	}
	o.Resume = ckpt
	o.OnCheckpoint = nil
	o.CheckpointEvery = 0
	res, err = analytics.RunPageRankCtx(nil, e, deg, env.Pool, o)
	faultinject.Deactivate()
	if err != nil {
		return nil, fmt.Errorf("pagerank-panic-retry: retry: %w", err)
	}
	emit("pagerank-panic-retry", time.Since(start))
	if err := verify("pagerank-panic-retry", res.Ranks); err != nil {
		return nil, err
	}
	return rep, nil
}
