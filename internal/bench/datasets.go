// Package bench is the experiment harness: it holds the synthetic
// dataset registry standing in for the paper's Table 1 graphs and one
// driver per table/figure of the evaluation section (§4), each
// printing rows in the paper's format. cmd/ihtlbench is the CLI
// front-end; the repository-root benchmarks wrap the same drivers in
// testing.B.
package bench

import (
	"fmt"
	"sync"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

// Dataset is a lazily generated synthetic stand-in for one of the
// paper's Table 1 graphs, scaled down ~1000x (see DESIGN.md §2 for
// why real datasets cannot be shipped and what the generators
// preserve).
type Dataset struct {
	// Name is the paper's short dataset name (Table 1).
	Name string
	// Kind is "social" (R-MAT, near-symmetric hubs) or "web"
	// (asymmetric in-hubs with host structure).
	Kind string
	// Analog describes the paper graph this imitates.
	Analog string
	// load generates the graph.
	load func() (*graph.Graph, error)

	once sync.Once
	g    *graph.Graph
	err  error
}

// Load generates (once) and returns the graph.
func (d *Dataset) Load() (*graph.Graph, error) {
	d.once.Do(func() { d.g, d.err = d.load() })
	return d.g, d.err
}

func rmatDS(name, analog string, scale, ef int, seed uint64) *Dataset {
	return &Dataset{
		Name: name, Kind: "social", Analog: analog,
		load: func() (*graph.Graph, error) {
			cfg := gen.DefaultRMAT(scale, ef, seed)
			// Social networks have highly reciprocal hubs (Fig 9).
			cfg.Reciprocity = 0.7
			return gen.RMAT(cfg)
		},
	}
}

func webDS(name, analog string, numV, meanOut int, seed uint64) *Dataset {
	return &Dataset{
		Name: name, Kind: "web", Analog: analog,
		load: func() (*graph.Graph, error) {
			cfg := gen.DefaultWeb(numV, seed)
			cfg.MeanOutDegree = meanOut
			return gen.Web(cfg)
		},
	}
}

// Registry returns the ten Table 1 analogues. Vertex/edge counts are
// ~1000x below the paper's (e.g. twtrmpi: 41M vertices/1.5B edges in
// the paper, ~40K/1.5M here); clwb9 is scaled ~4000x to keep the
// harness runnable in minutes.
func Registry() []*Dataset {
	return []*Dataset{
		rmatDS("lvjrnl", "LiveJournal (7M/0.22B)", 13, 27, 101),
		rmatDS("twtr10", "Twitter 2010 (21M/0.26B)", 15, 8, 102),
		rmatDS("twtrmpi", "Twitter MPI (41M/1.5B)", 16, 23, 103),
		rmatDS("frndstr", "Friendster (65M/1.8B)", 17, 14, 104),
		webDS("sk", "SK-Domain (50M/2B)", 50_000, 40, 105),
		webDS("wbcc", "Web-CC12 (89M/2B)", 89_000, 22, 106),
		webDS("ukdls", "UK-Delis (110M/4B)", 110_000, 36, 107),
		webDS("uu", "UK-Union (133M/5.5B)", 133_000, 41, 108),
		webDS("ukdmn", "UK-Domain (105M/6.6B)", 105_000, 63, 109),
		webDS("clwb9", "ClueWeb09 (1.7B/7.9B)", 425_000, 5, 110),
	}
}

// SmallRegistry returns reduced-size counterparts used by unit tests
// and quick benchmark runs.
func SmallRegistry() []*Dataset {
	return []*Dataset{
		rmatDS("lvjrnl-s", "LiveJournal (small)", 11, 12, 201),
		rmatDS("twtrmpi-s", "Twitter MPI (small)", 12, 12, 202),
		webDS("sk-s", "SK-Domain (small)", 12_000, 20, 203),
		webDS("uu-s", "UK-Union (small)", 16_000, 24, 204),
	}
}

// BatchSweepRegistry returns the datasets of the batch-width sweep:
// the scale-18 R-MAT the sweep's acceptance figure is recorded on
// (2^18 vertices, Graph500 edge factor 16 — the largest social analog
// in the repository) plus one small web analog for shape coverage.
func BatchSweepRegistry() []*Dataset {
	return []*Dataset{
		rmatDS("rmat18", "R-MAT scale 18 (batch sweep)", 18, 16, 118),
		webDS("sk-s", "SK-Domain (small)", 12_000, 20, 203),
	}
}

// EncRegistry returns the datasets of the block-encoding ablation
// (ihtlbench -encjson): the scale-14 R-MAT the CI schema gate asserts
// on, and the full-size SK-Domain web analog the compression-ratio
// acceptance figure (flat/varint bytes_per_edge >= 1.5x) is recorded
// on — web in-hub adjacency is dense and local after relabeling, so
// it is where the gap encoding pays most.
func EncRegistry() []*Dataset {
	return []*Dataset{
		rmatDS("rmat14", "R-MAT scale 14 (encoding ablation)", 14, 16, 114),
		webDS("sk", "SK-Domain (50M/2B)", 50_000, 40, 105),
	}
}

// ByName finds a dataset in the given registry.
func ByName(reg []*Dataset, name string) (*Dataset, error) {
	for _, d := range reg {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}
