package bench

import (
	"fmt"
	"runtime"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// ShardResult is one (dataset, shard count) measurement of the fused
// iHTL engine. Shards == 1 is the unsharded engine (the ablation
// baseline); Shards > 1 adds the cross-shard exchange phase, whose
// per-step busy time is split out as ExchangeBinNs/ExchangeDrainNs so
// the overhead of sharding is directly attributable.
type ShardResult struct {
	Dataset  string `json:"dataset"`
	Shards   int    `json:"shards"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// CrossEdges is how many edges the shard plan routed through the
	// exchange (0 for the unsharded baseline).
	CrossEdges int64 `json:"cross_edges,omitempty"`

	NsPerStep int64   `json:"ns_per_step"`
	NsPerEdge float64 `json:"ns_per_edge"`

	// FlippedNs/MergeNs/SparseNs split the per-step busy time of the
	// local (within-shard) pipeline phases, summed across workers and
	// shards; ExchangeBinNs/ExchangeDrainNs are the exchange's two
	// phases (zero when Shards == 1).
	FlippedNs       int64 `json:"flipped_ns,omitempty"`
	MergeNs         int64 `json:"merge_ns,omitempty"`
	SparseNs        int64 `json:"sparse_ns,omitempty"`
	ExchangeBinNs   int64 `json:"exchange_bin_ns,omitempty"`
	ExchangeDrainNs int64 `json:"exchange_drain_ns,omitempty"`
}

// ShardReport is the machine-readable sharding-ablation report
// (conventionally results/BENCH_shard.json).
type ShardReport struct {
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Iters      int           `json:"iters"`
	Host       *HostInfo     `json:"host,omitempty"`
	Results    []ShardResult `json:"results"`
}

// ShardCounts lists the default shard counts of the -shardjson sweep.
func ShardCounts() []int { return []int{1, 2, 4, 8} }

// RunShardJSON measures the fused iHTL engine at every shard count in
// shards (ShardCounts when empty) on each dataset. The sharded
// engines' steps are additionally checked bit-for-bit against the
// unsharded engine's in original ID space, so a recorded speedup can
// never come from computing something else.
func RunShardJSON(env *Env, datasets []*Dataset, shards []int) (*ShardReport, error) {
	if len(shards) == 0 {
		shards = ShardCounts()
	}
	rep := &ShardReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      env.Iters,
		Host:       CollectHost(env.Pool.Workers()),
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		var ref []float64
		for _, n := range shards {
			res, out, err := measureShards(env, g, n)
			if err != nil {
				return nil, fmt.Errorf("%s/shards=%d: %w", d.Name, n, err)
			}
			res.Dataset = d.Name
			if ref == nil {
				ref = out
			} else {
				for v := range ref {
					if ref[v] != out[v] {
						return nil, fmt.Errorf("%s/shards=%d: step differs from baseline at vertex %d", d.Name, n, v)
					}
				}
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

// measureShards times one engine configuration and returns its record
// plus one integer-valued step result in original ID space for the
// cross-configuration differential.
func measureShards(env *Env, g *graph.Graph, nshards int) (ShardResult, []float64, error) {
	res := ShardResult{Shards: nshards, Vertices: g.NumV, Edges: g.NumE}
	var (
		e     spmv.Stepper
		tb    func() core.Breakdown
		toOld func(in, out []float64)
		toNew func(in, out []float64)
	)
	if nshards == 1 {
		ih, err := core.BuildWith(g, env.ihtlParams(), env.Pool)
		if err != nil {
			return res, nil, err
		}
		eng, err := core.NewEngine(ih, env.Pool)
		if err != nil {
			return res, nil, err
		}
		e, tb, toOld, toNew = eng, eng.TakeBreakdown, ih.PermuteToOld, ih.PermuteToNew
	} else {
		sg, err := core.BuildSharded(g, env.ihtlParams(), env.Pool, nshards)
		if err != nil {
			return res, nil, err
		}
		eng, err := core.NewShardedEngine(sg, env.Pool)
		if err != nil {
			return res, nil, err
		}
		res.CrossEdges = sg.CrossEdges()
		e, tb, toOld, toNew = eng, eng.TakeBreakdown, sg.PermuteToOld, sg.PermuteToNew
	}
	tb() // discard construction-time state
	ns := stepTime(e, env.Iters).Nanoseconds()
	res.NsPerStep = ns
	res.NsPerEdge = float64(ns) / float64(g.NumE)
	if b := tb(); b.Steps > 0 {
		steps := int64(b.Steps)
		res.FlippedNs = b.FlippedBusy.Nanoseconds() / steps
		res.MergeNs = b.MergeBusy.Nanoseconds() / steps
		res.SparseNs = b.SparseTotalBusy().Nanoseconds() / steps
		res.ExchangeBinNs = b.ExchangeBinBusy.Nanoseconds() / steps
		res.ExchangeDrainNs = b.ExchangeDrainBusy.Nanoseconds() / steps
	}

	// Differential step: integer sources in original ID space.
	n := g.NumV
	src := make([]float64, n)
	for v := range src {
		src[v] = float64(v%17 - 8)
	}
	in := make([]float64, n)
	dst := make([]float64, n)
	out := make([]float64, n)
	toNew(src, in)
	e.Step(in, dst)
	toOld(dst, out)
	return res, out, nil
}

// WriteShardJSON writes the report as indented JSON, creating the
// target directory if needed.
func WriteShardJSON(path string, rep *ShardReport) error {
	return writeJSON(path, rep)
}

// ShardRegistry returns the datasets of the sharding ablation: the
// scale-14 R-MAT (hub-heavy, dense exchange) and the SK-Domain web
// analog (asymmetric hubs, host-block structure).
func ShardRegistry() []*Dataset {
	return []*Dataset{
		rmatDS("rmat14", "R-MAT scale 14 (shard ablation)", 14, 16, 114),
		webDS("sk-s", "SK-Domain (small)", 12_000, 20, 203),
	}
}
