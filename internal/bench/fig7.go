package bench

import (
	"fmt"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/spmv"
)

// Fig7Row is one dataset's row of Figure 7: per-iteration SpMV
// (PageRank) execution time under each traversal engine, plus the
// Table 2 preprocessing statistic (iHTL build time expressed in
// engine iterations).
type Fig7Row struct {
	Dataset       string
	NumV          int
	NumE          int64
	PushAtomic    time.Duration
	PushBuffered  time.Duration
	Pull          time.Duration
	PullPartition time.Duration
	IHTL          time.Duration
	// Preprocess is the iHTL graph construction time (Table 2 / Fig 8).
	Preprocess time.Duration
}

// Speedup returns other/ihtl as a factor.
func (r Fig7Row) Speedup(other time.Duration) float64 {
	if r.IHTL == 0 {
		return 0
	}
	return float64(other) / float64(r.IHTL)
}

// PreprocessIters expresses preprocessing cost in units of the given
// per-iteration time (Table 2's metric).
func (r Fig7Row) PreprocessIters(perIter time.Duration) float64 {
	if perIter == 0 {
		return 0
	}
	return float64(r.Preprocess) / float64(perIter)
}

// RunFig7 measures one dataset. Engines mirror the paper's matrix:
// push with atomics and with buffering (the GraphGrind/GraphIt push
// analogues), pull plain and destination-partitioned (the
// GraphGrind/GraphIt/Galois pull analogues), and iHTL.
func RunFig7(env *Env, name string, g *graph.Graph) (Fig7Row, error) {
	row := Fig7Row{Dataset: name, NumV: g.NumV, NumE: g.NumE}

	mk := func(dir spmv.Direction) (*spmv.Engine, error) {
		return spmv.NewEngine(g, env.Pool, dir, spmv.Options{})
	}
	pa, err := mk(spmv.PushAtomic)
	if err != nil {
		return row, err
	}
	pb, err := mk(spmv.PushBuffered)
	if err != nil {
		return row, err
	}
	pl, err := mk(spmv.Pull)
	if err != nil {
		return row, err
	}
	pp, err := mk(spmv.PushPartitioned)
	if err != nil {
		return row, err
	}

	start := time.Now()
	ih, err := core.Build(g, env.ihtlParams())
	if err != nil {
		return row, err
	}
	row.Preprocess = time.Since(start)
	ie, err := core.NewEngine(ih, env.Pool)
	if err != nil {
		return row, err
	}

	row.PushAtomic = stepTime(pa, env.Iters)
	row.PushBuffered = stepTime(pb, env.Iters)
	row.Pull = stepTime(pl, env.Iters)
	row.PullPartition = stepTime(pp, env.Iters)
	row.IHTL = stepTime(ie, env.Iters)
	return row, nil
}

// RenderFig7 prints Figure 7 (execution times) and Table 2
// (preprocessing overhead in iterations) for the given rows.
func RenderFig7(env *Env, rows []Fig7Row) {
	t := &Table{
		Title: "Figure 7: per-iteration SpMV/PageRank time (ms)",
		Header: []string{"Dataset", "|V|", "|E|", "Push-atomic", "Push-buf",
			"Pull", "Push-part", "iHTL", "Pull/iHTL", "Push/iHTL"},
	}
	var sumPull, sumPush float64
	for _, r := range rows {
		t.Add(r.Dataset, r.NumV, r.NumE,
			ms(r.PushAtomic.Seconds()), ms(r.PushBuffered.Seconds()),
			ms(r.Pull.Seconds()), ms(r.PullPartition.Seconds()), ms(r.IHTL.Seconds()),
			fmt.Sprintf("%.2fx", r.Speedup(r.Pull)),
			fmt.Sprintf("%.2fx", r.Speedup(r.PushAtomic)))
		sumPull += r.Speedup(r.Pull)
		sumPush += r.Speedup(r.PushAtomic)
	}
	if n := float64(len(rows)); n > 0 {
		t.Add("Avg. Speedup", "", "", "", "", "", "", "",
			fmt.Sprintf("%.2fx", sumPull/n), fmt.Sprintf("%.2fx", sumPush/n))
	}
	env.render(t)

	t2 := &Table{
		Title:  "Table 2: iHTL preprocessing overhead (in SpMV iterations of each engine)",
		Header: []string{"Dataset", "Preproc (ms)", "vs Pull", "vs Push-buf", "vs Push-part", "vs iHTL"},
	}
	for _, r := range rows {
		t2.Add(r.Dataset, ms(r.Preprocess.Seconds()),
			fmt.Sprintf("%.1f", r.PreprocessIters(r.Pull)),
			fmt.Sprintf("%.1f", r.PreprocessIters(r.PushBuffered)),
			fmt.Sprintf("%.1f", r.PreprocessIters(r.PullPartition)),
			fmt.Sprintf("%.1f", r.PreprocessIters(r.IHTL)))
	}
	env.render(t2)
}
