package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/serve"
	"ihtl/internal/xrand"
)

// ServeLanes lists the coalescing widths the -servejson sweep
// measures. K=1 is the no-coalescing baseline every wider setting
// must beat on throughput.
func ServeLanes() []int { return []int{1, 2, 4, 8} }

// ServeResult is one lane-width measurement of the ranking daemon
// under a closed-loop Zipf query load. Latency fields are
// nanoseconds; QPS is answered queries per wall-clock second.
type ServeResult struct {
	Lanes    int `json:"lanes"`
	Clients  int `json:"clients"`
	Requests int `json:"requests"`

	// WallNs is the wall-clock time from the first request issued to
	// the last answer delivered; QPS = Served / WallNs.
	WallNs int64   `json:"wall_ns"`
	QPS    float64 `json:"qps"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`

	// Batches and LaneFill come from the daemon's own /varz counters:
	// LaneFill[i] is the number of dispatched batches that coalesced
	// i+1 queries, MeanLaneFill its batch-weighted mean. ShedRate is
	// shed / (admitted + shed) — zero under a closed loop whose client
	// count stays below the admission queue bound.
	Batches      int64   `json:"batches"`
	LaneFill     []int64 `json:"lane_fill"`
	MeanLaneFill float64 `json:"mean_lane_fill"`
	Served       int64   `json:"served"`
	Shed         int64   `json:"shed"`
	ShedRate     float64 `json:"shed_rate"`
}

// ServeReport is the machine-readable serving-throughput report;
// WriteServeJSON serialises it (conventionally to
// results/BENCH_serve.json) for tracking across commits.
type ServeReport struct {
	Workers    int `json:"workers"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Scale/Vertices/Edges describe the R-MAT graph behind the engine
	// file every daemon in the sweep serves.
	Scale    int   `json:"scale"`
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// ZipfS is the exponent of the source-popularity distribution the
	// load generator draws query vertices from (original-ID space,
	// where low IDs are the R-MAT hubs — so the skew lands on the
	// vertices whose neighbourhoods the engine keeps hot).
	ZipfS float64 `json:"zipf_s"`
	// QueryIters is the fixed per-query iteration count (Tol < 0), so
	// every lane does identical work and the sweep compares pure
	// coalescing efficiency.
	QueryIters int           `json:"query_iters"`
	Host       *HostInfo     `json:"host,omitempty"`
	Results    []ServeResult `json:"results"`
}

// RunServeJSON measures the ranking daemon's query throughput at each
// coalescing width in lanes, on a scale-`scale` R-MAT engine file,
// under a closed-loop Zipf-distributed load of 2*max(lanes) clients.
//
// Each width gets its own engine file built with Params.ForBatch
// (hub buffers sized for that batch width, as a deployment would) and
// its own in-process serve.Server, so the measurement includes the
// real dispatcher, admission queue, and fill-window path — only the
// HTTP layer is skipped. Queries run a fixed iteration count (Tol<0)
// so lanes never converge early and the widths are directly
// comparable.
func RunServeJSON(env *Env, scale int, lanes []int) (*ServeReport, error) {
	if len(lanes) == 0 {
		lanes = ServeLanes()
	}
	maxLanes := 0
	for _, k := range lanes {
		if k < 1 {
			return nil, fmt.Errorf("invalid lane width %d", k)
		}
		if k > maxLanes {
			maxLanes = k
		}
	}
	const (
		zipfS      = 1.5
		queryIters = 20
		reqPerLane = 12 // requests = reqPerLane * maxLanes, same for every width
	)
	clients := 2 * maxLanes
	if clients < 4 {
		clients = 4
	}
	requests := reqPerLane * maxLanes

	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8, 1414))
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Vertices:   g.NumV,
		Edges:      g.NumE,
		ZipfS:      zipfS,
		QueryIters: queryIters,
		Host:       CollectHost(env.Pool.Workers()),
	}

	dir, err := os.MkdirTemp("", "ihtl-servebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	for _, k := range lanes {
		ih, err := core.Build(g, env.ihtlParams().ForBatch(k))
		if err != nil {
			return nil, fmt.Errorf("lanes %d: %w", k, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("engine-k%d.ihtl2", k))
		if err := ih.SaveFileV2(path); err != nil {
			return nil, fmt.Errorf("lanes %d: %w", k, err)
		}
		res, err := serveLoad(path, env.Pool.Workers(), k, clients, requests, zipfS, queryIters, g.NumV)
		if err != nil {
			return nil, fmt.Errorf("lanes %d: %w", k, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// serveLoad starts a daemon over the engine file and drives it with a
// closed loop of Zipf clients until `requests` answers are in.
func serveLoad(enginePath string, workers, lanes, clients, requests int, zipfS float64, queryIters, numV int) (ServeResult, error) {
	s, err := serve.New(serve.Config{
		EnginePath: enginePath,
		Workers:    workers,
		Lanes:      lanes,
		FillWindow: 2 * time.Millisecond,
		QueueLimit: 4 * clients,
		// A generous deadline: the load is closed-loop, so queueing
		// delay is bounded by clients/lanes batches.
		DefaultTimeout: 5 * time.Minute,
		Query:          serve.JobOptions{MaxIters: queryIters, Tol: -1, RedistributeDangling: true},
	})
	if err != nil {
		return ServeResult{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // teardown
		s.Close()
	}()

	// Warm up one batch so the sweep times steady-state serving, not
	// first-touch page faults on the mmapped topology.
	if _, err := s.QueryPPR(context.Background(), 0); err != nil {
		return ServeResult{}, err
	}
	warm := s.Metrics()

	latNs := make([]int64, requests)
	var next int64 // ticket counter; each client claims request indices
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			zipf := xrand.NewZipf(xrand.New(uint64(1000+c)), zipfS, 1, uint64(numV))
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if int(i) >= requests {
					return
				}
				src := uint32(zipf.Uint64())
				t0 := time.Now()
				_, err := s.QueryPPR(context.Background(), src)
				latNs[i] = time.Since(t0).Nanoseconds()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d: %w", c, err)
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return ServeResult{}, firstErr
	}

	m := s.Metrics()
	res := ServeResult{
		Lanes:    lanes,
		Clients:  clients,
		Requests: requests,
		WallNs:   wall.Nanoseconds(),
		Batches:  m.Batches - warm.Batches,
		Served:   m.Served - warm.Served,
		Shed:     m.Shed - warm.Shed,
		LaneFill: make([]int64, len(m.LaneFill)),
	}
	res.QPS = float64(res.Served) / wall.Seconds()
	if adm := m.Admitted - warm.Admitted + res.Shed; adm > 0 {
		res.ShedRate = float64(res.Shed) / float64(adm)
	}
	var fillSum int64
	for i := range m.LaneFill {
		res.LaneFill[i] = m.LaneFill[i]
		fillSum += int64(i+1) * m.LaneFill[i]
	}
	res.LaneFill[0] -= warm.LaneFill[0] // the warmup ran solo
	fillSum -= 1
	if res.Batches > 0 {
		res.MeanLaneFill = float64(fillSum) / float64(res.Batches)
	}
	sort.Slice(latNs, func(i, j int) bool { return latNs[i] < latNs[j] })
	res.P50Ns = percentileNs(latNs, 0.50)
	res.P95Ns = percentileNs(latNs, 0.95)
	res.P99Ns = percentileNs(latNs, 0.99)
	return res, nil
}

// percentileNs returns the p-th percentile of sorted ns samples by
// nearest-rank.
func percentileNs(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteServeJSON writes the report as indented JSON.
func WriteServeJSON(path string, rep *ServeReport) error {
	return writeJSON(path, rep)
}
