package bench

import (
	"fmt"
	"runtime"

	"ihtl/internal/core"
	"ihtl/internal/graph"
)

// BuildResult is one (dataset, mode) preprocessing measurement: the
// end-to-end edge-list-to-engine path, split into the graph build
// (CSR/CSC construction) and the core.Build phases (rank, select,
// relabel, blocks). Mode is "seq" (nil pool) or "par" (the env pool).
type BuildResult struct {
	Dataset  string `json:"dataset"`
	Mode     string `json:"mode"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`

	// GraphBuildNs is the edge-list → dual CSR/CSC graph.Build time.
	GraphBuildNs int64 `json:"graph_build_ns"`
	// RankNs..BlocksNs split CoreBuildNs per the BuildBreakdown of the
	// last iteration.
	RankNs    int64 `json:"rank_ns"`
	SelectNs  int64 `json:"select_ns"`
	RelabelNs int64 `json:"relabel_ns"`
	BlocksNs  int64 `json:"blocks_ns"`
	// CoreBuildNs is the full core.Build wall time (graph → iHTL).
	CoreBuildNs int64 `json:"core_build_ns"`
	// TotalNs is GraphBuildNs + CoreBuildNs.
	TotalNs int64 `json:"total_ns"`
}

// BuildReport is the machine-readable preprocessing-time report;
// WriteBuildJSON serialises it (conventionally to
// results/BENCH_build.json) for tracking across commits.
type BuildReport struct {
	Workers    int           `json:"workers"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Iters      int           `json:"iters"`
	Host       *HostInfo     `json:"host,omitempty"`
	Results    []BuildResult `json:"results"`
}

// RunBuildJSON measures sequential and parallel preprocessing time on
// each dataset: the edge list is extracted once, then graph.Build and
// core.Build are timed with a nil pool ("seq") and with the env pool
// ("par"). The parallel outputs are checked edge-count-identical to
// the sequential ones (the bit-for-bit check lives in the determinism
// test suites).
func RunBuildJSON(env *Env, datasets []*Dataset) (*BuildReport, error) {
	rep := &BuildReport{
		Workers:    env.Pool.Workers(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Iters:      env.Iters,
		Host:       CollectHost(env.Pool.Workers()),
	}
	for _, d := range datasets {
		g, err := d.Load()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.Name, err)
		}
		edges := g.Edges(nil)
		for _, mode := range []string{"seq", "par"} {
			res, err := measureBuild(env, d.Name, g, edges, mode)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, mode, err)
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}

func measureBuild(env *Env, name string, g *graph.Graph, edges []graph.Edge, mode string) (BuildResult, error) {
	pool := env.Pool
	if mode == "seq" {
		pool = nil
	}
	opt := graph.DefaultBuildOptions()
	opt.Pool = pool

	var rebuilt *graph.Graph
	var err error
	graphNs := timeIt(env.Iters, func() {
		rebuilt, err = graph.Build(g.NumV, edges, opt)
	}).Nanoseconds()
	if err != nil {
		return BuildResult{}, err
	}
	if rebuilt.NumE != g.NumE {
		return BuildResult{}, fmt.Errorf("rebuilt graph has %d edges, want %d", rebuilt.NumE, g.NumE)
	}

	var ih *core.IHTL
	coreNs := timeIt(env.Iters, func() {
		ih, err = core.BuildWith(g, env.ihtlParams(), pool)
	}).Nanoseconds()
	if err != nil {
		return BuildResult{}, err
	}
	if got := ih.FlippedEdges() + ih.Sparse.NumEdges(); got != g.NumE {
		return BuildResult{}, fmt.Errorf("iHTL covers %d edges, want %d", got, g.NumE)
	}
	bs := ih.BuildStats()
	return BuildResult{
		Dataset:      name,
		Mode:         mode,
		Vertices:     g.NumV,
		Edges:        g.NumE,
		GraphBuildNs: graphNs,
		RankNs:       bs.Rank.Nanoseconds(),
		SelectNs:     bs.Select.Nanoseconds(),
		RelabelNs:    bs.Relabel.Nanoseconds(),
		BlocksNs:     bs.Blocks.Nanoseconds(),
		CoreBuildNs:  coreNs,
		TotalNs:      graphNs + coreNs,
	}, nil
}

// WriteBuildJSON writes the report as indented JSON, creating the
// target directory if needed.
func WriteBuildJSON(path string, rep *BuildReport) error {
	return writeJSON(path, rep)
}
