package bench

import (
	"bufio"
	"os"
	"runtime"
	"strings"
)

// HostInfo identifies the machine and runtime configuration a report
// was measured on, so numbers tracked across commits in results/ are
// comparable only when the host matches. It is embedded in every
// JSON report ihtlbench writes.
type HostInfo struct {
	// GoVersion is runtime.Version() of the measuring binary.
	GoVersion string `json:"go_version"`
	// GoOS/GoArch are the build target.
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	// CPUModel is the processor model string (from /proc/cpuinfo on
	// Linux; empty when unavailable).
	CPUModel string `json:"cpu_model,omitempty"`
	// NumCPU is runtime.NumCPU(), GoMaxProcs the scheduler width at
	// measurement time, Workers the benchmark pool's worker count.
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
}

// CollectHost captures the host metadata for a report measured on a
// pool of the given worker count.
func CollectHost(workers int) *HostInfo {
	return &HostInfo{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		CPUModel:   cpuModel(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
}

// cpuModel reads the processor model string from /proc/cpuinfo. It
// returns "" on platforms without one (the field is omitted from the
// JSON then).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		// x86 calls it "model name", arm64 "CPU part"/"Hardware";
		// take the first recognisable naming line.
		for _, key := range []string{"model name", "Hardware", "CPU part"} {
			if rest, ok := strings.CutPrefix(line, key); ok {
				if i := strings.IndexByte(rest, ':'); i >= 0 {
					return strings.TrimSpace(rest[i+1:])
				}
			}
		}
	}
	return ""
}
