package serve

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/sched"
)

// testEngineFile builds an RMAT graph, its iHTL, and serialises it in
// the mmap-friendly v2 layout — the shape a production daemon loads.
func testEngineFile(t *testing.T, scale, k int, seed uint64) string {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	ih, err := core.Build(g, core.Params{HubsPerBlock: 64}.ForBatch(k))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.ihtl2")
	if err := ih.SaveFileV2(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(enginePath string) Config {
	return Config{
		EnginePath: enginePath,
		Workers:    4,
		Lanes:      4,
		FillWindow: 20 * time.Millisecond,
		QueueLimit: 64,
		Query:      JobOptions{MaxIters: 60, Tol: 1e-8, RedistributeDangling: true},
	}
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // cleanup
		s.Close()
	})
	return s
}

// soloPPR computes the reference answer the serving contract promises:
// a solo run on a StaticFlipped engine over the SAME engine file with
// the same worker count, mapped back to original IDs.
func soloPPR(t *testing.T, enginePath string, workers int, src uint32, opt analytics.PageRankOptions) ([]float64, analytics.PPRResult) {
	t.Helper()
	ef, err := core.OpenEngineFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	pool := sched.NewPool(workers)
	defer pool.Close()
	ih := ef.IHTL()
	eng, err := core.NewEngineOpts(ih, pool, core.EngineOptions{StaticFlipped: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analytics.RunPersonalizedPageRank(eng, ih.OutDegrees(), pool, []int{int(ih.NewID[src])}, opt)
	if err != nil {
		t.Fatal(err)
	}
	engRanks := res.Lane(0, nil)
	out := make([]float64, len(engRanks))
	for nv, r := range engRanks {
		out[ih.OldID[nv]] = r
	}
	return out, res
}

// pickSources returns vertices with outgoing edges (original IDs).
func pickSources(t *testing.T, enginePath string, n int) []uint32 {
	t.Helper()
	ef, err := core.OpenEngineFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	ih := ef.IHTL()
	deg := ih.OutDegrees()
	var out []uint32
	for v := 0; v < ih.NumV && len(out) < n; v += 1 + ih.NumV/(3*n) {
		if deg[v] > 0 {
			out = append(out, uint32(ih.OldID[v]))
		}
	}
	if len(out) != n {
		t.Fatalf("found only %d sources", len(out))
	}
	return out
}

// TestServeCoalescedBitIdenticalToSolo is the coalescing exactness
// contract end to end: K concurrent queries arriving within one fill
// window ride one batch, and each answer is bit-for-bit the solo run
// of the same source — twice, so the packing itself is reproducible.
func TestServeCoalescedBitIdenticalToSolo(t *testing.T) {
	path := testEngineFile(t, 9, 4, 41)
	cfg := testConfig(path)
	s := startServer(t, cfg)
	srcs := pickSources(t, path, 4)
	opt := analytics.PageRankOptions{
		MaxIters: cfg.Query.MaxIters, Tol: cfg.Query.Tol, RedistributeDangling: true,
	}

	for round := 0; round < 2; round++ {
		answers := make([]PPRAnswer, len(srcs))
		var wg sync.WaitGroup
		for i, src := range srcs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ans, err := s.QueryPPR(context.Background(), src)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				answers[i] = ans
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		for i, src := range srcs {
			ans := answers[i]
			if !ans.Converged {
				t.Fatalf("round %d query %d not converged: %+v", round, i, ans)
			}
			want, res := soloPPR(t, path, cfg.Workers, src, opt)
			if ans.Iters != res.Iters {
				t.Fatalf("round %d query %d converged at %d, solo at %d", round, i, ans.Iters, res.Iters)
			}
			for v := range want {
				if math.Float64bits(ans.Ranks[v]) != math.Float64bits(want[v]) {
					t.Fatalf("round %d query %d rank[%d] = %v, solo %v", round, i, v, ans.Ranks[v], want[v])
				}
			}
		}
	}
	m := s.Metrics()
	if m.Served < 8 {
		t.Fatalf("served = %d, want >= 8", m.Served)
	}
}
