package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// metrics is the daemon's operability surface: monotonic counters plus
// the queue-depth gauge and the per-batch lane-fill histogram, all
// lock-free so the hot admission path pays two atomic adds.
type metrics struct {
	admitted     atomic.Int64 // requests accepted into the queue
	shed         atomic.Int64 // requests refused with ErrOverloaded
	batches      atomic.Int64 // coalesced batches dispatched
	batchRetries atomic.Int64 // batch re-dispatches after a panic
	served       atomic.Int64 // lane results delivered
	deadline     atomic.Int64 // lanes emitted as deadline partials
	cancelled    atomic.Int64 // lanes abandoned by their requester
	queueDepth   atomic.Int64 // requests queued, not yet in a batch

	jobsStarted atomic.Int64 // jobs accepted via the API
	jobsResumed atomic.Int64 // jobs warm-restarted from the spool
	jobsDone    atomic.Int64
	jobsFailed  atomic.Int64
	jobRetries  atomic.Int64 // job attempts restarted after a fault
	rollbacks   atomic.Int64 // in-run checkpoint restores (numeric)
	spoolWrites atomic.Int64
	spoolErrors atomic.Int64 // failed spool writes (job continues)
	spoolBad    atomic.Int64 // quarantined undecodable spool files
	laneFill    []atomic.Int64
}

func newMetrics(lanes int) *metrics {
	return &metrics{laneFill: make([]atomic.Int64, lanes)}
}

// Varz is the JSON shape served at /varz.
type Varz struct {
	Admitted     int64   `json:"admitted"`
	Shed         int64   `json:"shed"`
	Batches      int64   `json:"batches"`
	BatchRetries int64   `json:"batch_retries"`
	Served       int64   `json:"served"`
	Deadline     int64   `json:"deadline_partials"`
	Cancelled    int64   `json:"cancelled"`
	QueueDepth   int64   `json:"queue_depth"`
	LaneFill     []int64 `json:"lane_fill"` // index i = batches with i+1 lanes

	JobsStarted int64 `json:"jobs_started"`
	JobsResumed int64 `json:"jobs_resumed"`
	JobsDone    int64 `json:"jobs_done"`
	JobsFailed  int64 `json:"jobs_failed"`
	JobRetries  int64 `json:"job_retries"`
	Rollbacks   int64 `json:"rollbacks"`
	SpoolWrites int64 `json:"spool_writes"`
	SpoolErrors int64 `json:"spool_errors"`
	SpoolBad    int64 `json:"spool_quarantined"`
}

func (m *metrics) snapshot() Varz {
	v := Varz{
		Admitted:     m.admitted.Load(),
		Shed:         m.shed.Load(),
		Batches:      m.batches.Load(),
		BatchRetries: m.batchRetries.Load(),
		Served:       m.served.Load(),
		Deadline:     m.deadline.Load(),
		Cancelled:    m.cancelled.Load(),
		QueueDepth:   m.queueDepth.Load(),
		LaneFill:     make([]int64, len(m.laneFill)),
		JobsStarted:  m.jobsStarted.Load(),
		JobsResumed:  m.jobsResumed.Load(),
		JobsDone:     m.jobsDone.Load(),
		JobsFailed:   m.jobsFailed.Load(),
		JobRetries:   m.jobRetries.Load(),
		Rollbacks:    m.rollbacks.Load(),
		SpoolWrites:  m.spoolWrites.Load(),
		SpoolErrors:  m.spoolErrors.Load(),
		SpoolBad:     m.spoolBad.Load(),
	}
	for i := range m.laneFill {
		v.LaneFill[i] = m.laneFill[i].Load()
	}
	return v
}

func (s *Server) handleVarz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.m.snapshot()) //nolint:errcheck // best-effort diagnostics
}
