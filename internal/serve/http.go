// HTTP surface of the daemon:
//
//	POST /v1/ppr        {"source": v, "timeout_ms": t?, "top": m?, "ranks": bool?}
//	POST /v1/jobs       {"algo": "pagerank"|"ppr", "sources": [..]?, "opts": {..}?}
//	GET  /v1/jobs/{id}  ?ranks=1&lane=j&top=m
//	GET  /healthz
//	GET  /varz
//
// Shed requests answer 429 with Retry-After; deadline-expired queries
// answer 200 with converged=false and the partial ranks (degraded
// mode). Every request is logged structurally (method, path, status,
// duration).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Handler returns the daemon's HTTP mux wrapped in the request log.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ppr", s.handlePPR)
	mux.HandleFunc("POST /v1/jobs", s.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	return s.logRequests(mux)
}

// statusRecorder captures the status code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "dur", time.Since(start))
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// pprRequest is the query body. Top selects how many of the highest
// ranks to return (default 10); Ranks requests the full dense vector
// (heavyweight — meant for verification harnesses, not serving).
type pprRequest struct {
	Source    uint32 `json:"source"`
	TimeoutMS int    `json:"timeout_ms"`
	Top       int    `json:"top"`
	Ranks     bool   `json:"ranks"`
}

// rankEntry is one vertex in the top-M answer.
type rankEntry struct {
	Vertex uint32  `json:"vertex"`
	Rank   float64 `json:"rank"`
}

// pprResponse wraps PPRAnswer for the wire, with the rank payload
// trimmed to top-M unless the full vector was requested.
type pprResponse struct {
	PPRAnswer
	Top   []rankEntry `json:"top,omitempty"`
	Ranks []float64   `json:"ranks,omitempty"`
}

func (s *Server) handlePPR(w http.ResponseWriter, r *http.Request) {
	var req pprRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ans, err := s.QueryPPR(ctx, req.Source)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, context.Canceled):
		// The requester went away; nobody is reading this.
		writeErr(w, 499, err)
		return
	case errors.Is(err, errDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	resp := pprResponse{PPRAnswer: ans}
	top := req.Top
	if top == 0 {
		top = 10
	}
	resp.Top = topRanks(ans.Ranks, top)
	if req.Ranks {
		resp.Ranks = ans.Ranks
	}
	writeJSON(w, http.StatusOK, resp)
}

// topRanks selects the m highest ranks, ties broken by ascending
// vertex ID so the answer is deterministic.
func topRanks(ranks []float64, m int) []rankEntry {
	if m > len(ranks) {
		m = len(ranks)
	}
	idx := make([]uint32, len(ranks))
	for v := range idx {
		idx[v] = uint32(v)
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := ranks[idx[a]], ranks[idx[b]]
		if ra != rb {
			return ra > rb
		}
		return idx[a] < idx[b]
	})
	out := make([]rankEntry, m)
	for i := 0; i < m; i++ {
		out[i] = rankEntry{Vertex: idx[i], Rank: ranks[idx[i]]}
	}
	return out
}

type jobCreateRequest struct {
	Algo    string     `json:"algo"`
	Sources []uint32   `json:"sources"`
	Opts    JobOptions `json:"opts"`
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req jobCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.StartJob(req.Algo, req.Sources, req.Opts)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

type jobResponse struct {
	JobStatus
	Top   []rankEntry `json:"top,omitempty"`
	Ranks []float64   `json:"ranks,omitempty"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.JobStatusByID(id)
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	resp := jobResponse{JobStatus: st}
	if st.Status == JobDone {
		q := r.URL.Query()
		lane, _ := strconv.Atoi(q.Get("lane")) //nolint:errcheck // empty → lane 0
		ranks, err := s.JobRanks(id, lane)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		top := 10
		if t := q.Get("top"); t != "" {
			if top, err = strconv.Atoi(t); err != nil || top < 0 {
				writeErr(w, http.StatusBadRequest, errors.New("serve: bad top"))
				return
			}
		}
		resp.Top = topRanks(ranks, top)
		if v := q.Get("ranks"); v == "1" || strings.EqualFold(v, "true") {
			resp.Ranks = ranks
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
