// Checkpoint spool: the daemon's crash-tolerance store. Every running
// job persists its latest analytics.Checkpoint — plus enough header to
// reconstruct the job — as one file per job, written atomically
// (temp → fsync → rename via internal/atomicio), so a kill -9 at any
// instant leaves either the previous complete snapshot or the new one.
// On startup the spool is scanned: running records resume bit-for-bit
// (the analytics Resume contract over a StaticFlipped engine), done
// records are served as completed jobs, and undecodable files — torn
// writes from a non-atomic writer, disk corruption — are quarantined
// with a counter, never a panic.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ihtl/internal/analytics"
	"ihtl/internal/atomicio"
)

var spoolMagic = [8]byte{'I', 'H', 'T', 'L', 'S', 'P', 'L', '1'}

const (
	spoolVersion = 1

	spoolStateRunning = 1
	spoolStateDone    = 2

	// Header length bounds: a corrupt length field must not drive a
	// multi-gigabyte allocation before validation fails.
	spoolMaxID   = 256
	spoolMaxAlgo = 64
	spoolMaxK    = 1 << 20
)

// JobOptions is the per-job slice of analytics.PageRankOptions the API
// exposes; zero values select the analytics defaults.
type JobOptions struct {
	Damping              float64 `json:"damping,omitempty"`
	MaxIters             int     `json:"max_iters,omitempty"`
	Tol                  float64 `json:"tol,omitempty"`
	RedistributeDangling bool    `json:"redistribute_dangling,omitempty"`
}

// jobSpec is everything needed to re-create a job from its spool
// record alone: the warm-restart path runs on a fresh process with no
// memory of the original request.
type jobSpec struct {
	ID      string
	Algo    string   // "pagerank" or "ppr"
	Sources []uint32 // original vertex IDs; empty for pagerank
	Opts    JobOptions
	// Workers is the pool width the checkpointed trajectory is pinned
	// to; resuming with a different width still converges but forfeits
	// the bit-for-bit contract, so the scanner surfaces a mismatch.
	Workers int
}

// spoolRecord is one job's durable state.
type spoolRecord struct {
	Spec  jobSpec
	State uint32 // spoolStateRunning or spoolStateDone
	// Ckpt is the latest snapshot of a running job, or the final
	// ranks (at the final iteration) of a done one.
	Ckpt *analytics.Checkpoint
}

func encodeSpool(w io.Writer, r *spoolRecord) error {
	if len(r.Spec.ID) > spoolMaxID || len(r.Spec.Algo) > spoolMaxAlgo || len(r.Spec.Sources) > spoolMaxK {
		return fmt.Errorf("serve: spool record fields out of bounds")
	}
	if _, err := w.Write(spoolMagic[:]); err != nil {
		return err
	}
	head := []any{
		uint32(spoolVersion), r.State, uint32(r.Spec.Workers),
		uint32(len(r.Spec.ID)), []byte(r.Spec.ID),
		uint32(len(r.Spec.Algo)), []byte(r.Spec.Algo),
		uint32(len(r.Spec.Sources)), r.Spec.Sources,
		r.Spec.Opts.Damping, int64(r.Spec.Opts.MaxIters), r.Spec.Opts.Tol,
	}
	for _, f := range head {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	var red uint8
	if r.Spec.Opts.RedistributeDangling {
		red = 1
	}
	if err := binary.Write(w, binary.LittleEndian, red); err != nil {
		return err
	}
	return analytics.EncodeCheckpoint(w, r.Ckpt)
}

func decodeSpool(r io.Reader) (*spoolRecord, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("serve: spool magic: %w", err)
	}
	if magic != spoolMagic {
		return nil, fmt.Errorf("serve: bad spool magic %q", magic[:])
	}
	var version, state, workers, idLen uint32
	for _, f := range []*uint32{&version, &state, &workers, &idLen} {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return nil, fmt.Errorf("serve: spool header: %w", err)
		}
	}
	if version != spoolVersion {
		return nil, fmt.Errorf("serve: unsupported spool version %d", version)
	}
	if state != spoolStateRunning && state != spoolStateDone {
		return nil, fmt.Errorf("serve: bad spool state %d", state)
	}
	if idLen > spoolMaxID {
		return nil, fmt.Errorf("serve: spool id length %d out of bounds", idLen)
	}
	id := make([]byte, idLen)
	if _, err := io.ReadFull(r, id); err != nil {
		return nil, fmt.Errorf("serve: spool id: %w", err)
	}
	var algoLen uint32
	if err := binary.Read(r, binary.LittleEndian, &algoLen); err != nil {
		return nil, fmt.Errorf("serve: spool header: %w", err)
	}
	if algoLen > spoolMaxAlgo {
		return nil, fmt.Errorf("serve: spool algo length %d out of bounds", algoLen)
	}
	algo := make([]byte, algoLen)
	if _, err := io.ReadFull(r, algo); err != nil {
		return nil, fmt.Errorf("serve: spool algo: %w", err)
	}
	var k uint32
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return nil, fmt.Errorf("serve: spool header: %w", err)
	}
	if k > spoolMaxK {
		return nil, fmt.Errorf("serve: spool source count %d out of bounds", k)
	}
	sources := make([]uint32, k)
	if err := binary.Read(r, binary.LittleEndian, sources); err != nil {
		return nil, fmt.Errorf("serve: spool sources: %w", err)
	}
	rec := &spoolRecord{State: state, Spec: jobSpec{
		ID: string(id), Algo: string(algo), Sources: sources, Workers: int(workers),
	}}
	var maxIters int64
	var red uint8
	if err := binary.Read(r, binary.LittleEndian, &rec.Spec.Opts.Damping); err != nil {
		return nil, fmt.Errorf("serve: spool options: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &maxIters); err != nil {
		return nil, fmt.Errorf("serve: spool options: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &rec.Spec.Opts.Tol); err != nil {
		return nil, fmt.Errorf("serve: spool options: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &red); err != nil {
		return nil, fmt.Errorf("serve: spool options: %w", err)
	}
	rec.Spec.Opts.MaxIters = int(maxIters)
	rec.Spec.Opts.RedistributeDangling = red == 1
	ckpt, err := analytics.DecodeCheckpoint(r)
	if err != nil {
		return nil, fmt.Errorf("serve: spool checkpoint: %w", err)
	}
	// A spool record owns its file: trailing bytes mean a mis-write.
	var one [1]byte
	if n, err := r.Read(one[:]); n != 0 || !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("serve: trailing bytes after spool checkpoint")
	}
	rec.Ckpt = ckpt
	return rec, nil
}

func spoolPath(dir, id string) string { return filepath.Join(dir, id+".spl") }

// writeSpool persists one record crash-consistently.
func writeSpool(dir string, rec *spoolRecord) error {
	return atomicio.WriteFile(spoolPath(dir, rec.Spec.ID), func(w io.Writer) error {
		return encodeSpool(w, rec)
	})
}

// scanSpool loads every decodable record from dir and quarantines the
// rest by renaming them to <name>.bad (so a persistent corruption is
// inspected once, not re-logged every boot). It returns the records
// and the number quarantined.
func scanSpool(dir string) ([]*spoolRecord, int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var recs []*spoolRecord
	bad := 0
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".spl") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		rec, err := readSpoolFile(path)
		if err != nil {
			bad++
			os.Rename(path, path+".bad") //nolint:errcheck // quarantine is best-effort
			continue
		}
		recs = append(recs, rec)
	}
	return recs, bad, nil
}

func readSpoolFile(path string) (*spoolRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeSpool(f)
}
