package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/sched"
)

// TestServeE2EKillDashNine is the full crash-tolerance drill against
// the real binary: build ihtlserve, start it on a scale-N engine,
// launch a throttled PageRank job, SIGKILL the process mid-job (the
// one signal no handler can drain), restart over the same spool, and
// require the finished ranks to be bit-for-bit the uninterrupted
// reference. Gated behind IHTL_SERVE_E2E_SCALE (the CI serve-e2e job
// sets 14) because it shells out to the go tool.
func TestServeE2EKillDashNine(t *testing.T) {
	scaleEnv := os.Getenv("IHTL_SERVE_E2E_SCALE")
	if scaleEnv == "" {
		t.Skip("set IHTL_SERVE_E2E_SCALE to run the kill -9 e2e")
	}
	scale, err := strconv.Atoi(scaleEnv)
	if err != nil || scale < 6 {
		t.Fatalf("bad IHTL_SERVE_E2E_SCALE %q", scaleEnv)
	}
	const workers = 4
	jobBody := `{"algo": "pagerank", "opts": {"max_iters": 50, "tol": -1, "redistribute_dangling": true}}`

	dir := t.TempDir()
	enginePath := testEngineFile(t, scale, 1, 97)
	spool := filepath.Join(dir, "spool")
	bin := filepath.Join(dir, "ihtlserve")
	build := exec.Command("go", "build", "-o", bin, "ihtl/cmd/ihtlserve")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ihtlserve: %v\n%s", err, out)
	}

	// First run: start, launch the job, kill -9 mid-flight.
	proc1, base1 := startDaemon(t, bin, enginePath, spool, workers, "-job-iter-delay", "25ms")
	resp := postJSON(t, base1+"/v1/jobs", jobBody)
	var created struct{ ID string }
	if err := json.Unmarshal(resp, &created); err != nil || created.ID == "" {
		t.Fatalf("job create: %v %s", err, resp)
	}
	waitJobIter(t, base1, created.ID, 6)
	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	proc1.Wait() //nolint:errcheck // killed

	// Second run: the spool must resume the job and finish it.
	proc2, base2 := startDaemon(t, bin, enginePath, spool, workers)
	defer func() {
		proc2.Process.Kill() //nolint:errcheck // teardown
		proc2.Wait()         //nolint:errcheck // teardown
	}()
	var varz Varz
	if err := json.Unmarshal(getBody(t, base2+"/varz"), &varz); err != nil {
		t.Fatal(err)
	}
	if varz.JobsResumed != 1 {
		t.Fatalf("jobs_resumed = %d after restart, want 1", varz.JobsResumed)
	}
	waitJobDone(t, base2, created.ID)
	var final struct {
		Iter  int       `json:"iter"`
		Ranks []float64 `json:"ranks"`
	}
	if err := json.Unmarshal(getBody(t, base2+"/v1/jobs/"+created.ID+"?ranks=1&top=0"), &final); err != nil {
		t.Fatal(err)
	}
	if final.Iter != 50 || len(final.Ranks) == 0 {
		t.Fatalf("final job state iter=%d ranks=%d", final.Iter, len(final.Ranks))
	}

	// Uninterrupted reference, same worker count and engine options
	// as the daemon's job path.
	ef, err := core.OpenEngineFile(enginePath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	pool := sched.NewPool(workers)
	defer pool.Close()
	ih := ef.IHTL()
	eng, err := core.NewEngineOpts(ih, pool, core.EngineOptions{StaticFlipped: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := analytics.RunPageRank(eng, ih.OutDegrees(), pool,
		analytics.PageRankOptions{MaxIters: 50, Tol: -1, RedistributeDangling: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, ih.NumV)
	for nv, r := range res.Ranks {
		want[ih.OldID[nv]] = r
	}
	if len(final.Ranks) != len(want) {
		t.Fatalf("rank vector length %d, want %d", len(final.Ranks), len(want))
	}
	for v := range want {
		if math.Float64bits(final.Ranks[v]) != math.Float64bits(want[v]) {
			t.Fatalf("rank[%d] = %v resumed-across-kill, %v uninterrupted — not bit-for-bit", v, final.Ranks[v], want[v])
		}
	}
}

// startDaemon launches the built binary on a random port and waits
// for its listening handshake on stdout.
func startDaemon(t *testing.T, bin, engine, spool string, workers int, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{
		"-engine", engine, "-spool", spool, "-addr", "127.0.0.1:0",
		"-workers", strconv.Itoa(workers), "-checkpoint-every", "2",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var line []byte
	buf := make([]byte, 1)
	deadline := time.Now().Add(30 * time.Second)
	for !bytes.HasSuffix(line, []byte("\n")) {
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck // teardown
			t.Fatalf("daemon never announced its address: %q", line)
		}
		if n, _ := stdout.Read(buf); n > 0 {
			line = append(line, buf[0])
		}
	}
	fields := strings.Fields(strings.TrimSpace(string(line)))
	addr := fields[len(fields)-1]
	base := "http://" + addr
	for time.Now().Before(deadline) {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			return cmd, base
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck // teardown
	t.Fatalf("daemon at %s never became healthy", base)
	return nil, ""
}

func postJSON(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck // test helper
	if resp.StatusCode >= 300 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

func jobStatusHTTP(t *testing.T, base, id string) (string, int) {
	t.Helper()
	var st struct {
		Status string `json:"status"`
		Iter   int    `json:"iter"`
	}
	if err := json.Unmarshal(getBody(t, base+"/v1/jobs/"+id), &st); err != nil {
		t.Fatal(err)
	}
	return st.Status, st.Iter
}

func waitJobIter(t *testing.T, base, id string, iter int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, got := jobStatusHTTP(t, base, id)
		if status == JobDone {
			t.Fatal("job finished before the kill window; raise -job-iter-delay")
		}
		if got >= iter {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iter %d (at %d)", iter, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitJobDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, _ := jobStatusHTTP(t, base, id)
		switch status {
		case JobDone:
			return
		case JobFailed:
			t.Fatalf("job failed after restart")
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished (status %s)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// moduleRoot walks up to go.mod (the e2e builds the daemon from the
// module, not the package dir).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test dir")
		}
		dir = parent
	}
}
