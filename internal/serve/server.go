// Package serve is the ranking-as-a-service layer: an HTTP daemon
// that mmap-loads a serialised engine graph (core.OpenEngineFile) and
// serves personalized-PageRank queries and whole-graph ranking jobs
// from it, with:
//
//   - request coalescing — in-flight PPR queries are packed into the
//     lanes of one batched SpMV traversal (analytics.RunPPRLanes), so
//     K concurrent queries share every edge load; lane results are
//     bit-for-bit what a solo run would produce because the engines
//     are built with core.EngineOptions.StaticFlipped;
//   - admission control — a bounded queue with load shedding
//     (ErrOverloaded → HTTP 429), per-request deadlines as context
//     timeouts, and a degraded mode that returns partial ranks with
//     converged=false when a deadline expires mid-run;
//   - crash tolerance — jobs checkpoint into an atomically-written
//     spool (internal/atomicio) and warm-restart bit-for-bit after a
//     kill -9; worker panics trigger bounded retries with jittered
//     backoff; SIGTERM drains in-flight work under a hard deadline;
//   - operability — /healthz, /varz counters, and a structured
//     request log.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when the pending
// queue is full or the server is draining: the caller should back off
// and retry.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// errDraining fails requests still queued when shutdown starts.
var errDraining = errors.New("serve: shutting down")

// Config configures a Server. Zero values select the documented
// defaults.
type Config struct {
	// EnginePath is the serialised engine graph (ihtlconvert output,
	// any version; v2/v3 files are memory-mapped).
	EnginePath string
	// SpoolDir holds the checkpoint spool. Created if missing.
	SpoolDir string
	// Workers is the pool width of every engine the daemon builds.
	// The bit-for-bit replay and warm-restart contracts are pinned to
	// this width. Default 4.
	Workers int
	// Lanes is K, the maximum queries coalesced into one batch.
	// Default 4.
	Lanes int
	// FillWindow bounds how long a batch waits for more queries after
	// its first: the latency cost of coalescing. Default 2ms.
	FillWindow time.Duration
	// Slots is the number of batches that may run concurrently, each
	// on its own pool+engine pair. Default 1.
	Slots int
	// QueueLimit bounds the pending-query queue; beyond it requests
	// are shed with ErrOverloaded. Default 64.
	QueueLimit int
	// DefaultTimeout is the per-request deadline applied when the
	// query does not carry one. Default 2s.
	DefaultTimeout time.Duration
	// Query is the iteration policy shared by all coalesced queries
	// (lanes of one batch share damping and tolerance by
	// construction).
	Query JobOptions
	// CheckpointEvery is the job snapshot cadence in iterations
	// (spool write + in-memory rollback target). Default 4.
	CheckpointEvery int
	// JobRetries bounds how many times a faulted job attempt is
	// restarted from its latest checkpoint. Default 2.
	JobRetries int
	// JobIterDelay throttles jobs by sleeping this long at every
	// checkpoint. Zero disables. Meant for chaos/e2e harnesses that
	// need a kill window, and for operators rate-limiting background
	// jobs against query traffic.
	JobIterDelay time.Duration
	// Logger receives the structured request log; nil discards it.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Lanes == 0 {
		c.Lanes = 4
	}
	if c.FillWindow == 0 {
		c.FillWindow = 2 * time.Millisecond
	}
	if c.Slots == 0 {
		c.Slots = 1
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 4
	}
	if c.JobRetries == 0 {
		c.JobRetries = 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(nullWriter{}, nil))
	}
	return c
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// engine is the stepping surface serve needs; *core.Engine and
// *core.ShardedEngine both provide it (plus the ctx-aware methods the
// analytics drivers sniff for).
type engine interface {
	spmv.BatchStepper
}

// slot is one unit of batch concurrency: a dedicated pool + engine
// pair, because an engine's step state is exclusive to one dispatch
// at a time.
type slot struct {
	pool *sched.Pool
	eng  engine
}

// Server is the daemon state. Create with New, serve Handler(), stop
// with Drain then Close.
type Server struct {
	cfg Config
	log *slog.Logger

	ef           *core.EngineFile
	n            int
	newID, oldID []graph.VID
	outDeg       []int

	m     *metrics
	reqCh chan *pprReq
	slots chan *slot

	jobMu sync.Mutex
	jobs  map[string]*job
	seq   atomic.Int64

	baseCtx    context.Context
	hardCancel context.CancelFunc
	done       chan struct{}
	drainOnce  sync.Once
	draining   atomic.Bool
	wg         sync.WaitGroup
}

// New opens the engine file, replays the checkpoint spool (resuming
// interrupted jobs), and starts the coalescing dispatcher.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ef, err := core.OpenEngineFile(cfg.EnginePath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening engine: %w", err)
	}
	s := &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		ef:    ef,
		m:     newMetrics(cfg.Lanes),
		reqCh: make(chan *pprReq, cfg.QueueLimit),
		slots: make(chan *slot, cfg.Slots),
		jobs:  make(map[string]*job),
		done:  make(chan struct{}),
	}
	s.baseCtx, s.hardCancel = context.WithCancel(context.Background())
	if ih := ef.IHTL(); ih != nil {
		s.n, s.newID, s.oldID, s.outDeg = ih.NumV, ih.NewID, ih.OldID, ih.OutDegrees()
	} else if sg := ef.Sharded(); sg != nil {
		s.n, s.newID, s.oldID, s.outDeg = sg.NumV, sg.NewID, sg.OldID, sg.OutDegrees()
	} else {
		ef.Close()
		return nil, fmt.Errorf("serve: %s holds no graph", cfg.EnginePath)
	}
	for i := 0; i < cfg.Slots; i++ {
		sl, err := s.newSlot()
		if err != nil {
			s.closeSlots()
			ef.Close()
			return nil, err
		}
		s.slots <- sl
	}
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			s.closeSlots()
			ef.Close()
			return nil, fmt.Errorf("serve: spool dir: %w", err)
		}
		if err := s.replaySpool(); err != nil {
			s.closeSlots()
			ef.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatcher()
	return s, nil
}

// newSlot builds one pool + StaticFlipped engine pair. Engines are
// rollback-capable (spmv.HealthRollback): a numeric fault mid-batch
// restores the drivers' in-memory snapshot instead of failing the
// queries riding it.
func (s *Server) newSlot() (*slot, error) {
	pool := sched.NewPool(s.cfg.Workers)
	eng, err := s.newEngine(pool)
	if err != nil {
		pool.Close()
		return nil, err
	}
	return &slot{pool: pool, eng: eng}, nil
}

func (s *Server) newEngine(pool *sched.Pool) (engine, error) {
	opt := core.EngineOptions{
		StaticFlipped: true,
		Health:        spmv.HealthPolicy{Mode: spmv.HealthRollback},
	}
	if ih := s.ef.IHTL(); ih != nil {
		return core.NewEngineOpts(ih, pool, opt)
	}
	return core.NewShardedEngineOpts(s.ef.Sharded(), pool, opt)
}

func (s *Server) closeSlots() {
	for {
		select {
		case sl := <-s.slots:
			sl.pool.Close()
		default:
			return
		}
	}
}

// Drain stops admitting work and waits for in-flight batches and jobs
// to reach a safe point: batches finish their queries, jobs persist
// their latest checkpoint and park (they resume on the next start).
// When ctx expires first, the hard stop cancels everything in flight
// mid-iteration and returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.done) })
	s.jobMu.Lock()
	for _, j := range s.jobs {
		if j.softCancel != nil {
			j.softCancel()
		}
	}
	s.jobMu.Unlock()
	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-settled
		return ctx.Err()
	}
}

// Close releases the slots and the engine mapping. Call after Drain.
func (s *Server) Close() error {
	s.hardCancel()
	s.closeSlots()
	return s.ef.Close()
}

// Metrics returns a point-in-time counter snapshot (the /varz body).
func (s *Server) Metrics() Varz { return s.m.snapshot() }

// NumVertices returns the served graph's vertex count (original ID
// space).
func (s *Server) NumVertices() int { return s.n }

// toEngine maps an original vertex ID into the engine's relabeled
// space; toOriginal scatters an engine-space vector back.
func (s *Server) toEngine(v uint32) int { return int(s.newID[v]) }

func (s *Server) toOriginal(ranks []float64) []float64 {
	out := make([]float64, len(ranks))
	for nv, r := range ranks {
		out[s.oldID[nv]] = r
	}
	return out
}

// jitter returns d scaled by a uniform [1, 2) factor, decorrelating
// retry storms across goroutines.
func jitter(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(int64(d))) //nolint:gosec // backoff jitter, not security
}
