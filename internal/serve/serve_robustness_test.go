package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/faultinject"
)

// TestServeDeadlinePartialDegrades: a query whose deadline expires
// mid-run comes back 200-shaped — status "deadline", converged=false,
// with the partial ranks of its last completed iteration.
func TestServeDeadlinePartialDegrades(t *testing.T) {
	path := testEngineFile(t, 9, 4, 43)
	cfg := testConfig(path)
	cfg.Query = JobOptions{MaxIters: 1_000_000, Tol: -1, RedistributeDangling: true}
	s := startServer(t, cfg)
	src := pickSources(t, path, 1)[0]

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	ans, err := s.QueryPPR(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Status != "deadline" || ans.Converged {
		t.Fatalf("status %q converged %v, want degraded deadline partial", ans.Status, ans.Converged)
	}
	if ans.Ranks == nil {
		t.Fatal("deadline partial carried no ranks")
	}
	if ans.Iters >= 1_000_000 {
		t.Fatalf("iters %d: deadline did not cut the run short", ans.Iters)
	}
	if got := s.Metrics().Deadline; got != 1 {
		t.Fatalf("deadline counter = %d, want 1", got)
	}
}

// TestServeAbandonedLaneReclaimed: a requester that goes away frees
// its lane at the next iteration boundary; no ranks are computed for
// it and the caller sees context.Canceled.
func TestServeAbandonedLaneReclaimed(t *testing.T) {
	path := testEngineFile(t, 8, 4, 44)
	s := startServer(t, testConfig(path))
	src := pickSources(t, path, 1)[0]

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.QueryPPR(ctx, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Metrics().Cancelled; got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// TestServeOverloadShedsWithBoundedQueue drives far more concurrent
// queries than the queue admits while a Delay fault slows every batch
// dispatch: the excess must shed as HTTP 429 with Retry-After, every
// admitted query must still answer, and the goroutine count must
// settle after drain — shedding may not leak.
func TestServeOverloadShedsWithBoundedQueue(t *testing.T) {
	path := testEngineFile(t, 8, 2, 45)
	cfg := testConfig(path)
	cfg.Lanes = 2
	cfg.QueueLimit = 4
	cfg.FillWindow = time.Millisecond
	cfg.DefaultTimeout = 5 * time.Second
	s := startServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	src := pickSources(t, path, 1)[0]

	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteServeBatch, Kind: faultinject.Delay,
		Delay: 30 * time.Millisecond, Times: 1 << 30,
	}))
	defer faultinject.Deactivate()

	before := runtime.NumGoroutine()
	const clients = 32
	var ok, shed, other int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/ppr", "application/json",
				strings.NewReader(fmt.Sprintf(`{"source": %d}`, src)))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				shed++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("unexpected statuses: ok=%d shed=%d other=%d", ok, shed, other)
	}
	if shed == 0 {
		t.Fatalf("no sheds with %d clients against queue of %d", clients, cfg.QueueLimit)
	}
	if ok == 0 {
		t.Fatal("every request shed; admission is over-tight")
	}
	m := s.Metrics()
	if m.Shed != int64(shed) {
		t.Fatalf("shed counter %d != %d observed 429s", m.Shed, shed)
	}

	// Goroutine settle: after the in-flight work drains, the only
	// goroutines left should be the baseline's (plus the test
	// server's idle conn pool, which Close tears down).
	ts.Close()
	ctx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelDrain()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines did not settle: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSpoolTornWriteQuarantined: every truncation of a spool record
// must be rejected at decode and quarantined (renamed .bad) by the
// startup scan — recovery must never panic or resurrect a torn job.
func TestSpoolTornWriteQuarantined(t *testing.T) {
	rec := &spoolRecord{
		Spec: jobSpec{ID: "job-1", Algo: "pagerank", Workers: 4,
			Opts: JobOptions{MaxIters: 10, Tol: 1e-6}},
		State: spoolStateRunning,
		Ckpt: &analytics.Checkpoint{Algo: "pagerank", Iter: 3, N: 2, K: 1,
			Ranks: []float64{0.5, 0.5}, Aux: []float64{0}},
	}
	var buf bytes.Buffer
	if err := encodeSpool(&buf, rec); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeSpool(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	got, err := decodeSpool(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("full record rejected: %v", err)
	}
	if got.Spec.ID != rec.Spec.ID || got.Ckpt.Iter != rec.Ckpt.Iter ||
		math.Float64bits(got.Ckpt.Ranks[0]) != math.Float64bits(rec.Ckpt.Ranks[0]) {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "good.spl"), full, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.spl"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, bad, err := scanSpool(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || bad != 1 {
		t.Fatalf("scan: %d records, %d quarantined; want 1 and 1", len(recs), bad)
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.spl.bad")); err != nil {
		t.Fatalf("torn record not quarantined: %v", err)
	}
}

// TestServeWarmRestartBitForBit is the in-process half of the kill -9
// contract: a job interrupted mid-run (drain parks it at its latest
// spooled checkpoint) resumes on a fresh Server over the same spool
// and finishes with exactly the ranks of an uninterrupted run.
func TestServeWarmRestartBitForBit(t *testing.T) {
	path := testEngineFile(t, 9, 1, 46)
	spool := t.TempDir()
	jobOpts := JobOptions{MaxIters: 40, Tol: -1, RedistributeDangling: true}

	cfg := testConfig(path)
	cfg.SpoolDir = spool
	cfg.CheckpointEvery = 2
	cfg.JobIterDelay = 5 * time.Millisecond

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s1.StartJob("pagerank", nil, jobOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Let it spool a few checkpoints, then interrupt mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s1.JobStatusByID(id)
		if ok && st.Iter >= 4 && st.Status == JobRunning {
			break
		}
		if ok && st.Status == JobDone {
			t.Fatal("job finished before the interrupt; raise MaxIters or the delay")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached iter 4: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s1.Close()

	// Fresh daemon over the same spool: the job must resume and
	// finish.
	cfg2 := cfg
	cfg2.JobIterDelay = 0
	s2 := startServer(t, cfg2)
	if got := s2.Metrics().JobsResumed; got != 1 {
		t.Fatalf("jobs resumed = %d, want 1", got)
	}
	for {
		st, ok := s2.JobStatusByID(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if st.Status == JobDone {
			break
		}
		if st.Status == JobFailed {
			t.Fatalf("resumed job failed: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resumed, err := s2.JobRanks(id, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference on a third daemon (no spool, same
	// worker count).
	cfg3 := testConfig(path)
	s3 := startServer(t, cfg3)
	refID, err := s3.StartJob("pagerank", nil, jobOpts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, _ := s3.JobStatusByID(refID)
		if st.Status == JobDone {
			break
		}
		if st.Status == JobFailed || time.Now().After(deadline) {
			t.Fatalf("reference job: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	want, err := s3.JobRanks(refID, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if math.Float64bits(resumed[v]) != math.Float64bits(want[v]) {
			t.Fatalf("rank[%d] = %v resumed, %v uninterrupted — warm restart is not bit-for-bit", v, resumed[v], want[v])
		}
	}
}

// TestServeChaosFaults is the smoke pass over the daemon's three
// fault sites: a panic per batch dispatch must be absorbed by the
// bounded batch retry, a panic per spool write by the job retry, and
// the server must keep answering correctly afterwards.
func TestServeChaosFaults(t *testing.T) {
	path := testEngineFile(t, 8, 2, 47)
	src := pickSources(t, path, 1)[0]

	t.Run("batch-panic-retried", func(t *testing.T) {
		cfg := testConfig(path)
		cfg.Lanes = 2
		s := startServer(t, cfg)
		faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteServeBatch, Kind: faultinject.Panic, Times: 1,
		}))
		defer faultinject.Deactivate()
		ans, err := s.QueryPPR(context.Background(), src)
		if err != nil {
			t.Fatalf("query after injected batch panic: %v", err)
		}
		if !ans.Converged {
			t.Fatalf("answer degraded by retry: %+v", ans)
		}
		if got := s.Metrics().BatchRetries; got != 1 {
			t.Fatalf("batch retries = %d, want 1", got)
		}
	})

	t.Run("batch-panic-exhausts", func(t *testing.T) {
		s := startServer(t, testConfig(path))
		faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteServeBatch, Kind: faultinject.Panic, Times: 1 << 30,
		}))
		defer faultinject.Deactivate()
		_, err := s.QueryPPR(context.Background(), src)
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("err = %v, want surfaced panic after bounded retries", err)
		}
		faultinject.Deactivate()
		if ans, err := s.QueryPPR(context.Background(), src); err != nil || !ans.Converged {
			t.Fatalf("server did not recover after fault cleared: %v %+v", err, ans)
		}
	})

	t.Run("spool-panic-job-retried", func(t *testing.T) {
		cfg := testConfig(path)
		cfg.SpoolDir = t.TempDir()
		cfg.CheckpointEvery = 1
		s := startServer(t, cfg)
		faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteServeSpool, Kind: faultinject.Panic, Times: 1,
		}))
		defer faultinject.Deactivate()
		id, err := s.StartJob("pagerank", nil, JobOptions{MaxIters: 6, Tol: -1})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := s.JobStatusByID(id)
			if st.Status == JobDone {
				if st.Retries != 1 {
					t.Fatalf("job retries = %d, want 1", st.Retries)
				}
				break
			}
			if st.Status == JobFailed {
				t.Fatalf("job failed despite bounded retry: %+v", st)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job stuck: %+v", st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	})

	t.Run("admit-delay-tolerated", func(t *testing.T) {
		s := startServer(t, testConfig(path))
		faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
			Site: faultinject.SiteServeAdmit, Kind: faultinject.Delay,
			Delay: 10 * time.Millisecond, Times: 4,
		}))
		defer faultinject.Deactivate()
		ans, err := s.QueryPPR(context.Background(), src)
		if err != nil || !ans.Converged {
			t.Fatalf("query under admit delay: %v %+v", err, ans)
		}
	})
}
