// Background ranking jobs: whole-graph PageRank or a PPR batch,
// running async under the daemon with checkpoint-backed crash
// tolerance. Every CheckpointEvery iterations the driver snapshot is
// spooled atomically; a kill -9 at any instant warm-restarts from the
// last spooled snapshot and — because the engines are StaticFlipped
// and the analytics Resume contract is bit-for-bit — finishes with
// exactly the ranks an uninterrupted run would have produced. A
// faulted attempt (worker panic, exhausted numeric rollback) restarts
// from the latest in-memory snapshot with jittered exponential
// backoff, at most JobRetries times.
package serve

import (
	"context"
	"fmt"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/faultinject"
	"ihtl/internal/sched"
)

// Job statuses reported by the API.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// job is one background ranking run. Mutable fields are guarded by
// the server's jobMu (status reads are rare: the API and drain).
type job struct {
	spec       jobSpec
	status     string
	iter       int
	retries    int
	rollbacks  int
	errMsg     string
	result     *analytics.Checkpoint // final state when status == done
	resume     *analytics.Checkpoint // latest snapshot (in-memory)
	softCancel context.CancelFunc
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID        string     `json:"id"`
	Algo      string     `json:"algo"`
	Sources   []uint32   `json:"sources,omitempty"`
	Status    string     `json:"status"`
	Iter      int        `json:"iter"`
	Retries   int        `json:"retries"`
	Rollbacks int        `json:"rollbacks"`
	Error     string     `json:"error,omitempty"`
	Opts      JobOptions `json:"opts"`
}

// StartJob validates and launches a background job, returning its ID.
func (s *Server) StartJob(algo string, sources []uint32, opts JobOptions) (string, error) {
	if s.draining.Load() {
		return "", ErrOverloaded
	}
	switch algo {
	case "pagerank":
		if len(sources) != 0 {
			return "", fmt.Errorf("serve: pagerank jobs take no sources")
		}
	case "ppr":
		if len(sources) == 0 {
			return "", fmt.Errorf("serve: ppr jobs need at least one source")
		}
		for _, src := range sources {
			if int(src) >= s.n {
				return "", fmt.Errorf("serve: vertex %d out of [0,%d)", src, s.n)
			}
		}
	default:
		return "", fmt.Errorf("serve: unknown algo %q", algo)
	}
	id := fmt.Sprintf("job-%x-%x", time.Now().UnixNano(), s.seq.Add(1))
	j := &job{
		spec: jobSpec{
			ID: id, Algo: algo, Sources: sources, Opts: opts,
			Workers: s.cfg.Workers,
		},
		status: JobRunning,
	}
	s.launchJob(j)
	s.m.jobsStarted.Add(1)
	return id, nil
}

// launchJob registers j and starts its attempt loop under a
// soft-cancellable context (drain cancels it; the job parks with its
// spool record intact and resumes on the next boot).
func (s *Server) launchJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.softCancel = cancel
	s.jobMu.Lock()
	s.jobs[j.spec.ID] = j
	s.jobMu.Unlock()
	s.wg.Add(1)
	go s.runJob(ctx, j)
}

// replaySpool is the warm-restart path: every decodable record is
// either re-registered as a completed job or resumed from its
// checkpoint.
func (s *Server) replaySpool() error {
	recs, bad, err := scanSpool(s.cfg.SpoolDir)
	if err != nil {
		return fmt.Errorf("serve: scanning spool: %w", err)
	}
	s.m.spoolBad.Add(int64(bad))
	for _, rec := range recs {
		j := &job{spec: rec.Spec}
		switch rec.State {
		case spoolStateDone:
			j.status = JobDone
			j.result = rec.Ckpt
			j.iter = rec.Ckpt.Iter
			s.jobMu.Lock()
			s.jobs[j.spec.ID] = j
			s.jobMu.Unlock()
		case spoolStateRunning:
			j.status = JobRunning
			j.resume = rec.Ckpt
			j.iter = rec.Ckpt.Iter
			if rec.Spec.Workers != s.cfg.Workers {
				s.log.Warn("resuming with different worker count; bit-for-bit replay not guaranteed",
					"job", j.spec.ID, "spooled", rec.Spec.Workers, "now", s.cfg.Workers)
			}
			s.m.jobsResumed.Add(1)
			s.launchJob(j)
		}
	}
	return nil
}

// runJob is the bounded retry loop around jobAttempt.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.wg.Done()
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := s.jobAttempt(ctx, j)
		if err == nil {
			s.m.jobsDone.Add(1)
			return
		}
		if ctx.Err() != nil {
			// Drain or hard stop: the job parks as running with its
			// latest spool record; the next boot resumes it.
			s.log.Info("job parked", "job", j.spec.ID, "iter", j.iter)
			return
		}
		s.jobMu.Lock()
		j.retries++
		s.jobMu.Unlock()
		s.m.jobRetries.Add(1)
		if attempt >= s.cfg.JobRetries {
			s.jobMu.Lock()
			j.status = JobFailed
			j.errMsg = err.Error()
			s.jobMu.Unlock()
			s.m.jobsFailed.Add(1)
			s.log.Error("job failed", "job", j.spec.ID, "err", err, "attempts", attempt+1)
			return
		}
		s.log.Warn("job attempt failed; restarting from checkpoint",
			"job", j.spec.ID, "err", err, "attempt", attempt+1, "iter", j.iter)
		time.Sleep(jitter(backoff))
		backoff *= 2
	}
}

// jobAttempt runs the job from its latest snapshot to completion on a
// fresh pool + engine, converting panics into errors so the retry
// loop owns the policy.
func (s *Server) jobAttempt(ctx context.Context, j *job) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("serve: job panic: %v", p)
		}
	}()
	pool := sched.NewPool(j.spec.Workers)
	defer pool.Close()
	eng, err := s.newEngine(pool)
	if err != nil {
		return err
	}
	opt := analytics.PageRankOptions{
		Damping:              j.spec.Opts.Damping,
		MaxIters:             j.spec.Opts.MaxIters,
		Tol:                  j.spec.Opts.Tol,
		RedistributeDangling: j.spec.Opts.RedistributeDangling,
		CheckpointEvery:      s.cfg.CheckpointEvery,
		OnCheckpoint:         func(c *analytics.Checkpoint) { s.onJobCheckpoint(j, c) },
	}
	s.jobMu.Lock()
	opt.Resume = j.resume.Clone()
	s.jobMu.Unlock()

	var final *analytics.Checkpoint
	var rollbacks int
	switch j.spec.Algo {
	case "pagerank":
		res, rerr := analytics.RunPageRankCtx(ctx, eng, s.outDeg, pool, opt)
		if rerr != nil {
			return rerr
		}
		rollbacks = res.Rollbacks
		final = &analytics.Checkpoint{Algo: "pagerank", Iter: res.Iters, N: s.n, K: 1,
			Ranks: res.Ranks, Aux: []float64{res.Delta}}
	case "ppr":
		srcs := make([]int, len(j.spec.Sources))
		for i, src := range j.spec.Sources {
			srcs[i] = s.toEngine(src)
		}
		res, rerr := analytics.RunPersonalizedPageRankCtx(ctx, eng, s.outDeg, pool, srcs, opt)
		if rerr != nil {
			return rerr
		}
		rollbacks = res.Rollbacks
		aux := append([]float64(nil), res.Deltas...)
		final = &analytics.Checkpoint{Algo: "ppr", Iter: res.Iters, N: s.n, K: res.K,
			Ranks: res.Ranks, Aux: aux}
	default:
		return fmt.Errorf("serve: unknown algo %q", j.spec.Algo)
	}

	s.jobMu.Lock()
	j.status = JobDone
	j.result = final
	j.iter = final.Iter
	j.rollbacks += rollbacks
	s.jobMu.Unlock()
	s.m.rollbacks.Add(int64(rollbacks))
	s.spoolJob(j, spoolStateDone, final)
	return nil
}

// onJobCheckpoint runs on the job's driver goroutine at every
// snapshot: retain it as the in-memory retry target, spool it, and
// apply the throttle knob.
func (s *Server) onJobCheckpoint(j *job, c *analytics.Checkpoint) {
	cl := c.Clone()
	s.jobMu.Lock()
	j.resume = cl
	j.iter = cl.Iter
	s.jobMu.Unlock()
	s.spoolJob(j, spoolStateRunning, cl)
	if s.cfg.JobIterDelay > 0 {
		time.Sleep(s.cfg.JobIterDelay)
	}
}

// spoolJob persists the job's state; failures are counted and logged
// but do not stop the job (the previous spool record stays valid, so
// durability degrades by one checkpoint interval, not to zero).
func (s *Server) spoolJob(j *job, state uint32, c *analytics.Checkpoint) {
	if s.cfg.SpoolDir == "" {
		return
	}
	faultinject.Fire(faultinject.SiteServeSpool)
	rec := &spoolRecord{Spec: j.spec, State: state, Ckpt: c}
	if err := writeSpool(s.cfg.SpoolDir, rec); err != nil {
		s.m.spoolErrors.Add(1)
		s.log.Error("spool write failed", "job", j.spec.ID, "err", err)
		return
	}
	s.m.spoolWrites.Add(1)
}

// JobStatusByID returns the API view of one job.
func (s *Server) JobStatusByID(id string) (JobStatus, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return JobStatus{
		ID: j.spec.ID, Algo: j.spec.Algo, Sources: j.spec.Sources,
		Status: j.status, Iter: j.iter, Retries: j.retries,
		Rollbacks: j.rollbacks, Error: j.errMsg, Opts: j.spec.Opts,
	}, true
}

// JobRanks returns a done job's final ranks in ORIGINAL vertex-ID
// space: lane j of a PPR job, or the single PageRank vector (lane 0).
func (s *Server) JobRanks(id string, lane int) ([]float64, error) {
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	var result *analytics.Checkpoint
	if ok {
		result = j.result
	}
	s.jobMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: no job %q", id)
	}
	if result == nil {
		return nil, fmt.Errorf("serve: job %q not done", id)
	}
	if lane < 0 || lane >= result.K {
		return nil, fmt.Errorf("serve: lane %d out of [0,%d)", lane, result.K)
	}
	eng := make([]float64, result.N)
	for v := 0; v < result.N; v++ {
		eng[v] = result.Ranks[v*result.K+lane]
	}
	return s.toOriginal(eng), nil
}
