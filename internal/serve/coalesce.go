// Request coalescing: the dispatcher packs queued PPR queries into the
// lanes of one batched traversal. Lane assignment is arrival order —
// the admission queue is FIFO and lanes are filled in dequeue order —
// so a given arrival sequence always produces the same packing, and
// (on the StaticFlipped engines the daemon builds) bit-identical
// per-query results to solo runs.
package serve

import (
	"context"
	"fmt"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/faultinject"
)

// maxBatchRetries bounds how many times a panicked batch is
// re-dispatched (with the already-answered lanes excluded) before the
// remaining queries fail.
const maxBatchRetries = 2

// pprReq is one admitted query. res is buffered so a batch can
// deliver the outcome after the requester has given up.
type pprReq struct {
	src int // engine ID space
	ctx context.Context
	res chan laneOutcome
}

// laneOutcome is what a query gets back: the lane result (ranks in
// engine ID space) plus the width of the batch it rode in, or a
// terminal error.
type laneOutcome struct {
	res   analytics.LaneResult
	lanes int
	err   error
}

// admit enqueues a query or sheds it. Shedding is load feedback, not
// failure: the caller maps ErrOverloaded to 429 + Retry-After.
func (s *Server) admit(r *pprReq) error {
	faultinject.Fire(faultinject.SiteServeAdmit)
	if s.draining.Load() {
		s.m.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case s.reqCh <- r:
		s.m.admitted.Add(1)
		s.m.queueDepth.Add(1)
		return nil
	default:
		s.m.shed.Add(1)
		return ErrOverloaded
	}
}

// dispatcher is the single coalescing loop: take the oldest queued
// query, hold the batch open for FillWindow (or until K lanes are
// full), then run it on the next free slot. Admission stays decoupled
// — while every slot is busy the queue keeps absorbing arrivals up to
// QueueLimit and sheds beyond it.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	for {
		var first *pprReq
		select {
		case first = <-s.reqCh:
		case <-s.done:
			s.failQueued()
			return
		}
		batch := []*pprReq{first}
		timer := time.NewTimer(s.cfg.FillWindow)
		for len(batch) < s.cfg.Lanes {
			select {
			case r := <-s.reqCh:
				batch = append(batch, r)
				continue
			case <-timer.C:
			case <-s.done:
			}
			break
		}
		timer.Stop()
		s.m.queueDepth.Add(-int64(len(batch)))
		var sl *slot
		select {
		case sl = <-s.slots:
		case <-s.baseCtx.Done():
			for _, r := range batch {
				r.res <- laneOutcome{err: errDraining}
			}
			s.failQueued()
			return
		}
		s.m.batches.Add(1)
		s.m.laneFill[len(batch)-1].Add(1)
		s.wg.Add(1)
		go s.runBatch(sl, batch)
		select {
		case <-s.done:
			s.failQueued()
			return
		default:
		}
	}
}

// failQueued drains whatever is still queued at shutdown.
func (s *Server) failQueued() {
	for {
		select {
		case r := <-s.reqCh:
			s.m.queueDepth.Add(-1)
			r.res <- laneOutcome{err: errDraining}
		default:
			return
		}
	}
}

// runBatch drives one coalesced batch to completion. Numeric faults
// are absorbed inside RunPPRLanes (rollback to its in-memory
// snapshot); a panic — a poisoned worker, an injected fault — fails
// only the batch attempt: the lanes already answered keep their
// results (RunPPRLanes' emitted guard delivered them), and the rest
// are re-dispatched as a narrower batch after a jittered backoff, at
// most maxBatchRetries times.
func (s *Server) runBatch(sl *slot, reqs []*pprReq) {
	defer s.wg.Done()
	defer func() { s.slots <- sl }()
	opt := analytics.PageRankOptions{
		Damping:              s.cfg.Query.Damping,
		MaxIters:             s.cfg.Query.MaxIters,
		Tol:                  s.cfg.Query.Tol,
		RedistributeDangling: s.cfg.Query.RedistributeDangling,
		CheckpointEvery:      s.cfg.CheckpointEvery,
	}
	outstanding := reqs
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		answered := make([]bool, len(outstanding))
		lanes := make([]analytics.LaneRequest, len(outstanding))
		for j, r := range outstanding {
			lanes[j] = analytics.LaneRequest{Source: r.src, Ctx: r.ctx}
		}
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("serve: batch panic: %v", p)
				}
			}()
			faultinject.Fire(faultinject.SiteServeBatch)
			return analytics.RunPPRLanes(s.baseCtx, sl.eng, s.outDeg, sl.pool, lanes, opt, func(res analytics.LaneResult) {
				answered[res.Lane] = true
				s.m.served.Add(1)
				switch res.Status {
				case analytics.LaneDeadline:
					s.m.deadline.Add(1)
				case analytics.LaneCancelled:
					s.m.cancelled.Add(1)
				}
				outstanding[res.Lane].res <- laneOutcome{res: res, lanes: len(lanes)}
			})
		}()
		if err == nil {
			return
		}
		var left []*pprReq
		for j, r := range outstanding {
			if !answered[j] {
				left = append(left, r)
			}
		}
		if len(left) == 0 {
			return
		}
		if attempt >= maxBatchRetries || s.baseCtx.Err() != nil {
			s.log.Error("batch failed", "err", err, "lanes", len(left), "attempts", attempt+1)
			for _, r := range left {
				r.res <- laneOutcome{err: err}
			}
			return
		}
		s.m.batchRetries.Add(1)
		s.log.Warn("batch retry", "err", err, "lanes", len(left), "attempt", attempt+1)
		time.Sleep(jitter(backoff))
		backoff *= 2
		outstanding = left
	}
}

// QueryPPR admits one personalized-PageRank query for the original
// vertex src and blocks until its lane completes (the common HTTP
// path wraps this with the request context carrying the deadline).
// The returned ranks are in ORIGINAL vertex-ID space.
func (s *Server) QueryPPR(ctx context.Context, src uint32) (PPRAnswer, error) {
	if int(src) >= s.n {
		return PPRAnswer{}, fmt.Errorf("serve: vertex %d out of [0,%d)", src, s.n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	req := &pprReq{src: s.toEngine(src), ctx: ctx, res: make(chan laneOutcome, 1)}
	if err := s.admit(req); err != nil {
		return PPRAnswer{}, err
	}
	out := <-req.res
	if out.err != nil {
		return PPRAnswer{}, out.err
	}
	r := out.res
	ans := PPRAnswer{
		Source: src, Status: r.Status.String(),
		Converged: r.Converged(), Iters: r.Iters, Delta: r.Delta,
		Lane: r.Lane, Lanes: out.lanes,
	}
	if r.Status == analytics.LaneCancelled {
		return ans, context.Canceled
	}
	ans.Ranks = s.toOriginal(r.Ranks)
	return ans, nil
}

// PPRAnswer is a completed query in original ID space. Status
// "deadline" carries partial ranks with Converged false — the
// degraded mode under load.
type PPRAnswer struct {
	Source    uint32    `json:"source"`
	Status    string    `json:"status"`
	Converged bool      `json:"converged"`
	Iters     int       `json:"iters"`
	Delta     float64   `json:"delta"`
	Lane      int       `json:"lane"`
	Lanes     int       `json:"lanes"`
	Ranks     []float64 `json:"-"`
}
