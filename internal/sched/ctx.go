package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrPoolClosed reports a dispatch attempted after Close. The
// ctx-aware entrypoints (RunCtx and friends) return it; the legacy
// panicking entrypoints use it as their panic value.
var ErrPoolClosed = errors.New("sched: dispatch on closed Pool")

// PanicError is the first panic captured from a pool worker during a
// dispatch: the recovered value, the worker that raised it, and its
// stack at recovery time. Plain dispatches re-panic with it on the
// orchestrating goroutine; ctx-aware dispatches and Fallible regions
// return it as an error.
type PanicError struct {
	Value  any
	Worker int
	Stack  []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: worker %d panicked: %v", e.Worker, e.Value)
}

// Unwrap exposes a panic value that was itself an error (e.g. an
// injected *faultinject.InjectedPanic) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoverWorker is deferred around every worker job body. It trips the
// abort flag first — so sibling claim loops and abort-aware barriers
// unwind within one chunk — then records the first panic with its
// stack. It deliberately lives outside the //ihtl:noalloc annotated
// call path: it only runs (and allocates) on the failure path.
func (p *Pool) recoverWorker(worker int) {
	r := recover()
	if r == nil {
		return
	}
	p.abort.Store(true)
	p.panicMu.Lock()
	if p.panicErr == nil {
		p.panicErr = &PanicError{Value: r, Worker: worker, Stack: debug.Stack()}
	}
	p.panicMu.Unlock()
}

// Fallible opens a fallible dispatch region: until the returned end
// func is called, every plain dispatch on the pool runs with worker
// panics diverted into the region (captured, not re-raised) and with
// cancellation of ctx tripping the abort flag that every claim loop
// polls. end() closes the region and reports its first failure — a
// *PanicError from any worker, or ctx.Err() — leaving the pool clean
// for the next dispatch.
//
// After a failure, the remaining dispatches of the region degrade to
// cheap no-ops (workers observe the abort flag on their first claim),
// so a multi-phase orchestrator can issue its whole pipeline and check
// the error once at end(). ctx may be nil (no cancellation). Regions
// must not nest and, like dispatches, must come from the single
// orchestrating goroutine. If the pool is closed or ctx is already
// cancelled, Fallible returns a nil end and the error without opening
// a region.
func (p *Pool) Fallible(ctx context.Context) (end func() error, err error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	if p.inRegion {
		panic("sched: nested Fallible region")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	p.inRegion = true
	p.regionErr = nil
	stopWatch := p.armCancel(ctx)
	return func() error {
		stopWatch()
		p.inRegion = false
		err := p.regionErr
		p.regionErr = nil
		if err == nil && ctx != nil {
			err = ctx.Err()
		}
		p.abort.Store(false)
		return err
	}, nil
}

// armCancel mirrors cancellation of ctx into the pool's abort flag
// from a watcher goroutine, so in-flight claim loops observe it within
// one chunk rather than at the next dispatch boundary. The returned
// stop joins the watcher before clearing the flag, so a cancellation
// that races with region teardown can never leak into the next region.
func (p *Pool) armCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			p.ctxCanceled.Store(true)
			p.abort.Store(true)
		case <-stopped:
		}
	}()
	return func() {
		close(stopped)
		<-done
		p.ctxCanceled.Store(false)
	}
}

// dispatchCtx wraps one plain dispatch in a single-dispatch Fallible
// region.
func (p *Pool) dispatchCtx(ctx context.Context, tmpl job) error {
	end, err := p.Fallible(ctx)
	if err != nil {
		return err
	}
	p.dispatch(tmpl)
	return end()
}

// ctxErr is the empty-work result of the ctx-aware parallel-fors:
// nothing ran, but a cancelled ctx still reports its error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// RunCtx is Run with cancellation and panic isolation: fn runs once on
// every worker; a panic in any fn is captured as a *PanicError and
// returned, and cancellation of ctx makes unstarted workers no-ops.
// Unlike the plain entrypoints it returns ErrPoolClosed instead of
// panicking on a closed pool. The cancellation fast path costs one
// atomic load per worker, so annotated hot paths stay allocation-free.
func (p *Pool) RunCtx(ctx context.Context, fn func(worker int)) error {
	return p.dispatchCtx(ctx, job{fn: fn})
}

// ForStaticCtx is ForStatic with cancellation and panic isolation; see
// RunCtx for the contract.
func (p *Pool) ForStaticCtx(ctx context.Context, n int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	return p.dispatchCtx(ctx, job{staticN: n, rangeFn: fn})
}

// ForDynamicCtx is ForDynamic with cancellation and panic isolation:
// cancellation is observed at every chunk claim (one atomic load); see
// RunCtx for the contract.
func (p *Pool) ForDynamicCtx(ctx context.Context, n, grain int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	if grain <= 0 {
		grain = defaultGrain
	}
	return p.dispatchCtx(ctx, job{dynN: n, grain: grain, rangeFn: fn})
}

// ForEachPartCtx is ForEachPart with cancellation and panic isolation:
// cancellation is observed at every part claim; see RunCtx for the
// contract.
func (p *Pool) ForEachPartCtx(ctx context.Context, nparts int, fn func(worker, part int)) error {
	if nparts <= 0 {
		return ctxErr(ctx)
	}
	return p.dispatchCtx(ctx, job{dynN: nparts, partFn: fn})
}

// ForStealCtx is ForSteal with cancellation and panic isolation:
// cancellation is observed at every chunk claim; see RunCtx for the
// contract.
func (p *Pool) ForStealCtx(ctx context.Context, n, grain int, fn func(worker, lo, hi int)) error {
	return p.ForStealWithCtx(ctx, p.steal, n, grain, fn)
}

// ForStealWithCtx is ForStealWith with cancellation and panic
// isolation; see RunCtx for the contract.
func (p *Pool) ForStealWithCtx(ctx context.Context, s *StealScheduler, n, grain int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	if grain <= 0 {
		grain = defaultGrain
	}
	if len(s.ranges) != p.workers {
		panic("sched: StealScheduler sized for a different worker count")
	}
	s.Reset(n)
	return p.dispatchCtx(ctx, job{steal: s, grain: grain, rangeFn: fn})
}
