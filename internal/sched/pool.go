// Package sched provides the parallel-execution substrate used by all
// graph kernels in this repository: a reusable worker pool following
// the master-worker model of the paper's implementation, grain-based
// parallel-for loops with static and dynamic (work-stealing) schedules,
// the vertex- and edge-balanced partitioners of GraphGrind
// (Sun et al., ICS'17) used to load-balance SpMV, and the fused-region
// primitives (Barrier, Countdowns) that let an engine run a multi-phase
// iteration as a single pool dispatch.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ihtl/internal/faultinject"
)

// Pool is a fixed set of worker goroutines that repeatedly execute
// parallel jobs. Reusing the same goroutines across SpMV iterations
// avoids per-iteration spawn cost and keeps per-thread buffers
// (the iHTL flipped-block buffers) affine to one worker.
//
// A Pool must be created with NewPool and released with Close.
// Dispatches (Run and every parallel-for built on it) must come from a
// single orchestrating goroutine at a time: the pool reuses one
// completion WaitGroup and one steal scheduler across dispatches so
// that steady-state dispatch is allocation-free.
type Pool struct {
	workers int
	jobs    chan job
	wg      sync.WaitGroup
	closed  atomic.Bool

	// done is the reusable completion barrier of the current dispatch.
	done sync.WaitGroup
	// steal is the reusable scheduler behind ForSteal (engines that
	// need several schedulers in one fused region hold their own and
	// use ForStealWith).
	steal *StealScheduler
	// dyn is the reusable claim counter behind ForDynamic/ForEachPart,
	// reset by dispatch. Reuse is safe because dispatches are
	// single-orchestrator: no two jobs are in flight at once.
	dyn atomic.Int64

	// abort is the cooperative kill switch of the current dispatch: set
	// when a worker panics or the region's context is cancelled, read
	// once per chunk claim by every dynamic mode (and pollable via
	// Aborted by engine-owned claim loops and abort-aware barriers).
	// dispatch re-derives it from ctxCanceled and regionErr, so a
	// failure poisons the rest of its region but never the next one.
	abort atomic.Bool
	// ctxCanceled mirrors ctx.Done() of the Fallible region currently
	// armed, set by the watcher goroutine and cleared when the watcher
	// is joined.
	ctxCanceled atomic.Bool
	// panicMu serialises first-panic capture across workers; panicErr
	// is read by the orchestrator only after done.Wait (a WaitGroup
	// happens-before edge), so the read needs no lock.
	panicMu  sync.Mutex
	panicErr *PanicError

	// Orchestrator-only region state (see Fallible).
	inRegion  bool
	regionErr error
}

// job is one worker's share of a dispatch. Exactly one mode is set:
// fn selects a plain run; steal drains rangeFn over chunks claimed
// from the scheduler; partFn drains single parts claimed from the
// pool's dyn counter; dynN (with partFn nil) drains grain-sized chunks
// from dyn; staticN runs rangeFn once on the worker's static split.
// Keeping every claim loop in the worker, and the schedule parameters
// in this by-value struct, makes ALL parallel-for dispatches
// allocation-free — no per-call closure wraps the caller's fn.
type job struct {
	fn      func(worker int)
	steal   *StealScheduler
	grain   int
	rangeFn func(worker, lo, hi int)
	partFn  func(worker, part int)
	staticN int
	dynN    int
	done    *sync.WaitGroup
	id      int
}

// NewPool creates a pool with the given number of workers. If workers
// is <= 0, runtime.GOMAXPROCS(0) workers are created.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan job),
		steal:   NewStealScheduler(workers),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

//ihtl:noalloc
func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.runJob(j)
		j.done.Done()
	}
}

// runJob executes one worker's share of a dispatch. Every dynamic
// claim loop re-checks the pool's abort flag before taking the next
// chunk — one atomic load per claim, the amortised cancellation cost —
// and the deferred recover isolates a panicking worker body: the panic
// is captured (first wins) and the abort flag tripped so sibling claim
// loops drain instead of deadlocking on unreachable barriers.
//
//ihtl:noalloc
func (p *Pool) runJob(j job) {
	defer p.recoverWorker(j.id)
	switch {
	case j.fn != nil:
		if p.abort.Load() {
			return
		}
		j.fn(j.id)
	case j.steal != nil:
		for !p.abort.Load() {
			lo, hi, ok := j.steal.Next(j.id, j.grain)
			if !ok {
				return
			}
			faultinject.Fire(faultinject.SiteSchedClaim)
			j.rangeFn(j.id, lo, hi)
		}
	case j.partFn != nil:
		for !p.abort.Load() {
			part := int(p.dyn.Add(1)) - 1
			if part >= j.dynN {
				return
			}
			faultinject.Fire(faultinject.SiteSchedClaim)
			j.partFn(j.id, part)
		}
	case j.dynN > 0:
		for !p.abort.Load() {
			lo := int(p.dyn.Add(int64(j.grain))) - j.grain
			if lo >= j.dynN {
				return
			}
			hi := lo + j.grain
			if hi > j.dynN {
				hi = j.dynN
			}
			faultinject.Fire(faultinject.SiteSchedClaim)
			j.rangeFn(j.id, lo, hi)
		}
	default:
		if p.abort.Load() {
			return
		}
		lo, hi := splitRange(j.staticN, p.workers, j.id)
		if lo < hi {
			j.rangeFn(j.id, lo, hi)
		}
	}
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn once on every worker concurrently, passing each
// worker its id in [0, Workers()), and blocks until all return.
// It is the primitive on which the parallel-for schedules are built.
//
//ihtl:noalloc
func (p *Pool) Run(fn func(worker int)) {
	p.dispatch(job{fn: fn})
}

// dispatch fans the job template out to every worker and waits. On a
// closed pool it panics with ErrPoolClosed (the ctx-aware entrypoints
// return it instead). A worker panic during the dispatch is re-raised
// here on the orchestrator — unless a Fallible region is open, in
// which case it is recorded as the region's error and the region's
// remaining dispatches degrade to cheap no-ops.
//
//ihtl:noalloc
func (p *Pool) dispatch(tmpl job) {
	if p.closed.Load() {
		p.panicClosed()
	}
	p.abort.Store(p.ctxCanceled.Load() || p.regionErr != nil)
	p.dyn.Store(0)
	tmpl.done = &p.done
	p.done.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		tmpl.id = w
		p.jobs <- tmpl
	}
	p.done.Wait()
	if p.panicErr != nil {
		p.settlePanic()
	}
}

func (p *Pool) panicClosed() {
	panic(ErrPoolClosed)
}

// settlePanic consumes the captured worker panic after a dispatch:
// inside a Fallible region it becomes the region error (first
// failure wins); outside one it is re-raised on the orchestrator,
// preserving the pre-robustness contract that a panicking worker body
// crashes the plain dispatch call.
func (p *Pool) settlePanic() {
	pe := p.panicErr
	p.panicErr = nil
	if p.inRegion {
		if p.regionErr == nil {
			p.regionErr = pe
		}
		return
	}
	panic(pe)
}

// Aborted reports whether the in-flight dispatch has been asked to
// stop (a sibling worker panicked, or the Fallible region's context
// was cancelled). Engine-owned claim loops running under Run poll it
// at task boundaries; it is one atomic load.
//
//ihtl:noalloc
func (p *Pool) Aborted() bool { return p.abort.Load() }

// Close shuts the pool down and is idempotent: the first call closes
// the job channel and joins the workers, subsequent calls return
// immediately. It must not be called concurrently with a dispatch;
// dispatching afterwards panics with (or, via the ctx-aware
// entrypoints, returns) ErrPoolClosed.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
