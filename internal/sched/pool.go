// Package sched provides the parallel-execution substrate used by all
// graph kernels in this repository: a reusable worker pool following
// the master-worker model of the paper's implementation, grain-based
// parallel-for loops with static and dynamic (work-stealing) schedules,
// and the vertex- and edge-balanced partitioners of GraphGrind
// (Sun et al., ICS'17) used to load-balance SpMV.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines that repeatedly execute
// parallel jobs. Reusing the same goroutines across SpMV iterations
// avoids per-iteration spawn cost and keeps per-thread buffers
// (the iHTL flipped-block buffers) affine to one worker.
//
// A Pool must be created with NewPool and released with Close.
type Pool struct {
	workers int
	jobs    chan job
	wg      sync.WaitGroup
	closed  atomic.Bool
}

type job struct {
	fn   func(worker int)
	done *sync.WaitGroup
	id   int
}

// NewPool creates a pool with the given number of workers. If workers
// is <= 0, runtime.GOMAXPROCS(0) workers are created.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan job),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.fn(j.id)
		j.done.Done()
	}
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn once on every worker concurrently, passing each
// worker its id in [0, Workers()), and blocks until all return.
// It is the primitive on which the parallel-for schedules are built.
func (p *Pool) Run(fn func(worker int)) {
	if p.closed.Load() {
		panic("sched: Run on closed Pool")
	}
	var done sync.WaitGroup
	done.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- job{fn: fn, done: &done, id: w}
	}
	done.Wait()
}

// Close shuts the pool down. It must not be called concurrently with
// Run, and Run must not be called afterwards.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
