// Package sched provides the parallel-execution substrate used by all
// graph kernels in this repository: a reusable worker pool following
// the master-worker model of the paper's implementation, grain-based
// parallel-for loops with static and dynamic (work-stealing) schedules,
// the vertex- and edge-balanced partitioners of GraphGrind
// (Sun et al., ICS'17) used to load-balance SpMV, and the fused-region
// primitives (Barrier, Countdowns) that let an engine run a multi-phase
// iteration as a single pool dispatch.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines that repeatedly execute
// parallel jobs. Reusing the same goroutines across SpMV iterations
// avoids per-iteration spawn cost and keeps per-thread buffers
// (the iHTL flipped-block buffers) affine to one worker.
//
// A Pool must be created with NewPool and released with Close.
// Dispatches (Run and every parallel-for built on it) must come from a
// single orchestrating goroutine at a time: the pool reuses one
// completion WaitGroup and one steal scheduler across dispatches so
// that steady-state dispatch is allocation-free.
type Pool struct {
	workers int
	jobs    chan job
	wg      sync.WaitGroup
	closed  atomic.Bool

	// done is the reusable completion barrier of the current dispatch.
	done sync.WaitGroup
	// steal is the reusable scheduler behind ForSteal (engines that
	// need several schedulers in one fused region hold their own and
	// use ForStealWith).
	steal *StealScheduler
}

// job is one worker's share of a dispatch. fn != nil selects a plain
// run; otherwise the worker drains rangeFn over chunks claimed from
// steal — keeping the claim loop in the worker avoids allocating a
// closure per steal dispatch.
type job struct {
	fn      func(worker int)
	steal   *StealScheduler
	grain   int
	rangeFn func(worker, lo, hi int)
	done    *sync.WaitGroup
	id      int
}

// NewPool creates a pool with the given number of workers. If workers
// is <= 0, runtime.GOMAXPROCS(0) workers are created.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		jobs:    make(chan job),
		steal:   NewStealScheduler(workers),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		if j.fn != nil {
			j.fn(j.id)
		} else {
			for {
				lo, hi, ok := j.steal.Next(j.id, j.grain)
				if !ok {
					break
				}
				j.rangeFn(j.id, lo, hi)
			}
		}
		j.done.Done()
	}
}

// Workers reports the number of workers in the pool.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn once on every worker concurrently, passing each
// worker its id in [0, Workers()), and blocks until all return.
// It is the primitive on which the parallel-for schedules are built.
func (p *Pool) Run(fn func(worker int)) {
	p.dispatch(job{fn: fn})
}

// dispatch fans the job template out to every worker and waits.
func (p *Pool) dispatch(tmpl job) {
	if p.closed.Load() {
		panic("sched: Run on closed Pool")
	}
	tmpl.done = &p.done
	p.done.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		tmpl.id = w
		p.jobs <- tmpl
	}
	p.done.Wait()
}

// Close shuts the pool down. It must not be called concurrently with
// Run, and Run must not be called afterwards.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
