package sched

import (
	"sync"
	"sync/atomic"
)

// StealScheduler implements range-based work stealing in the style of
// Blumofe & Leiserson: each worker owns a contiguous range of
// iterations and takes chunks from its front, while thieves split the
// *largest remaining* victim range in half from the back. Compared to
// a single shared counter this keeps each worker's accesses contiguous
// (good spatial locality on CSR offsets) while still balancing the
// heavy tail of power-law vertex work.
type StealScheduler struct {
	ranges []stealRange
}

type stealRange struct {
	lo atomic.Int64
	hi atomic.Int64
	mu sync.Mutex
	_  [4]int64 // pad to keep ranges on distinct cache lines
}

// NewStealScheduler prepares per-worker ranges over [0, n) for the
// given worker count.
func NewStealScheduler(workers int) *StealScheduler {
	return &StealScheduler{ranges: make([]stealRange, workers)}
}

// Reset redistributes [0, n) across workers. It must be called before
// each parallel loop and not concurrently with Next.
//
//ihtl:noalloc
func (s *StealScheduler) Reset(n int) {
	w := len(s.ranges)
	for i := range s.ranges {
		lo, hi := splitRange(n, w, i)
		s.ranges[i].lo.Store(int64(lo))
		s.ranges[i].hi.Store(int64(hi))
	}
}

// Next claims a chunk of at most grain iterations for the given
// worker, stealing from the most loaded victim when the local range
// is exhausted. It returns ok=false when no work remains anywhere.
//
//ihtl:noalloc
func (s *StealScheduler) Next(worker, grain int) (lo, hi int, ok bool) {
	if lo, hi, ok = s.take(worker, grain); ok {
		return lo, hi, true
	}
	for {
		victim, remaining := -1, int64(0)
		for i := range s.ranges {
			if i == worker {
				continue
			}
			r := s.ranges[i].hi.Load() - s.ranges[i].lo.Load()
			if r > remaining {
				victim, remaining = i, r
			}
		}
		if victim < 0 {
			return 0, 0, false
		}
		if s.steal(worker, victim) {
			if lo, hi, ok = s.take(worker, grain); ok {
				return lo, hi, true
			}
		} else if remaining <= 0 {
			return 0, 0, false
		}
	}
}

// take pops up to grain iterations from the front of worker's range.
//
//ihtl:noalloc
func (s *StealScheduler) take(worker, grain int) (int, int, bool) {
	r := &s.ranges[worker]
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := r.lo.Load()
	hi := r.hi.Load()
	if lo >= hi {
		return 0, 0, false
	}
	end := lo + int64(grain)
	if end > hi {
		end = hi
	}
	r.lo.Store(end)
	return int(lo), int(end), true
}

// steal moves the back half of victim's range to worker's range.
//
//ihtl:noalloc
func (s *StealScheduler) steal(worker, victim int) bool {
	v := &s.ranges[victim]
	v.mu.Lock()
	lo := v.lo.Load()
	hi := v.hi.Load()
	if hi <= lo {
		v.mu.Unlock()
		return false
	}
	// For a range of size 1, mid == lo: the thief takes the whole
	// remainder. Refusing size-1 steals would leave the last item of
	// an otherwise-idle victim unreachable and spin thieves forever.
	mid := lo + (hi-lo)/2
	v.hi.Store(mid)
	v.mu.Unlock()

	w := &s.ranges[worker]
	w.mu.Lock()
	w.lo.Store(mid)
	w.hi.Store(hi)
	w.mu.Unlock()
	return true
}

// ForSteal runs fn(worker, lo, hi) over [0, n) using work stealing
// with the given chunk grain (<=0 selects a default). It reuses the
// pool's preallocated scheduler, so steady-state calls allocate
// nothing; engines that interleave several steal loops in one fused
// region must hold their own schedulers and use ForStealWith.
//
//ihtl:noalloc
func (p *Pool) ForSteal(n, grain int, fn func(worker, lo, hi int)) {
	p.ForStealWith(p.steal, n, grain, fn)
}

// ForStealWith is ForSteal over a caller-owned scheduler, created once
// with NewStealScheduler(pool.Workers()) and reused across calls. The
// scheduler is Reset here; the claim loop runs inside the pool workers
// themselves, so the call allocates nothing.
//
//ihtl:noalloc
func (p *Pool) ForStealWith(s *StealScheduler, n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = defaultGrain
	}
	if len(s.ranges) != p.workers {
		panic("sched: StealScheduler sized for a different worker count")
	}
	s.Reset(n)
	p.dispatch(job{steal: s, grain: grain, rangeFn: fn})
}
