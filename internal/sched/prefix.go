package sched

// prefixSumCutoff is the array length below which the blocked parallel
// prefix sum falls back to the sequential scan: under it the two
// dispatch barriers cost more than the scan itself.
const prefixSumCutoff = 1 << 13

// PrefixSum computes the in-place inclusive prefix sum
// a[i] = a[0] + ... + a[i]. With a nil pool (or a single worker, or a
// short slice) it runs sequentially; otherwise it uses the classic
// blocked two-pass scheme: each worker scans its static block locally,
// the per-block totals are prefix-summed sequentially (O(workers)),
// and a second pass adds each block's incoming offset. Both passes use
// the same ForStatic split, so the result is bit-for-bit identical to
// the sequential scan.
func PrefixSum(pool *Pool, a []int64) {
	n := len(a)
	if pool == nil || pool.Workers() <= 1 || n < prefixSumCutoff {
		prefixSumSeq(a)
		return
	}
	w := pool.Workers()
	// offs[i+1] holds block i's total after pass 1, and after the
	// sequential fold offs[i] is the offset to add to block i.
	offs := make([]int64, w+1)
	//ihtl:allow-nosite scan blocks are memory-only; build callers inject via their own fill sites
	pool.ForStatic(n, func(worker, lo, hi int) {
		offs[worker+1] = prefixSumBlock(a[lo:hi])
	})
	for i := 0; i < w; i++ {
		offs[i+1] += offs[i]
	}
	//ihtl:allow-nosite scan blocks are memory-only; build callers inject via their own fill sites
	pool.ForStatic(n, func(worker, lo, hi int) {
		addOffset(a[lo:hi], offs[worker])
	})
}

// prefixSumSeq is the sequential inclusive scan.
//
//ihtl:noalloc
func prefixSumSeq(a []int64) {
	var s int64
	for i := range a {
		s += a[i]
		a[i] = s
	}
}

// prefixSumBlock scans one block in place and returns its total.
//
//ihtl:noalloc
func prefixSumBlock(a []int64) int64 {
	var s int64
	for i := range a {
		s += a[i]
		a[i] = s
	}
	return s
}

// addOffset adds off to every element (pass 2 of the blocked scan).
//
//ihtl:noalloc
func addOffset(a []int64, off int64) {
	if off == 0 {
		return
	}
	for i := range a {
		a[i] += off
	}
}
