package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ihtl/internal/faultinject"
)

// settleGoroutines polls until the goroutine count drops back to at
// most base (plus slack for runtime helpers), failing t otherwise.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d, base %d", runtime.NumGoroutine(), base)
}

func TestWorkerPanicReturnsPanicError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	err := p.ForDynamicCtx(nil, 1000, 10, func(worker, lo, hi int) {
		if lo <= 500 && 500 < hi {
			panic("boom at 500")
		}
	})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if perr.Value != "boom at 500" {
		t.Fatalf("panic value = %v", perr.Value)
	}
	if len(perr.Stack) == 0 {
		t.Fatal("captured no stack")
	}
	if perr.Worker < 0 || perr.Worker >= 4 {
		t.Fatalf("worker index %d out of range", perr.Worker)
	}

	// The pool must be fully reusable after the failure.
	var n atomic.Int64
	if err := p.ForDynamicCtx(nil, 100, 1, func(worker, lo, hi int) {
		n.Add(int64(hi - lo))
	}); err != nil {
		t.Fatalf("clean dispatch after panic: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("clean dispatch covered %d/100 items", n.Load())
	}
}

func TestPlainDispatchRepanicsWithPanicError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("plain dispatch swallowed the worker panic")
		}
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("re-panic value %T, want *PanicError", r)
		}
		// Pool still serves dispatches after the re-panic.
		ran := make([]bool, 2)
		p.Run(func(w int) { ran[w] = true })
		if !ran[0] || !ran[1] {
			t.Fatalf("pool wedged after re-panic: %v", ran)
		}
	}()
	p.Run(func(w int) {
		if w == 1 {
			panic("worker 1 dies")
		}
	})
}

func TestInjectedPanicUnwrapsThroughPanicError(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	faultinject.Activate(faultinject.NewPlan(faultinject.Rule{
		Site: faultinject.SiteSchedClaim, Kind: faultinject.Panic, After: 7,
	}))
	defer faultinject.Deactivate()

	err := p.ForStealCtx(nil, 10000, 16, func(worker, lo, hi int) {})
	var ip *faultinject.InjectedPanic
	if !errors.As(err, &ip) {
		t.Fatalf("err = %v, want to unwrap *faultinject.InjectedPanic", err)
	}
	if ip.Site != faultinject.SiteSchedClaim || ip.Hit != 7 {
		t.Fatalf("injected at %s hit %d, want %s hit 7", ip.Site, ip.Hit, faultinject.SiteSchedClaim)
	}
}

func TestCancelMidDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	for seed := uint64(0); seed < 10; seed++ {
		// Randomised cancellation point: a seeded chunk-claim index.
		cancelAt := faultinject.SeededAfter(seed, "test.cancel", 500)
		ctx, cancel := context.WithCancel(context.Background())
		var claims atomic.Int64
		var done atomic.Int64
		err := p.ForDynamicCtx(ctx, 100000, 16, func(worker, lo, hi int) {
			if claims.Add(1) == cancelAt+1 {
				cancel()
			}
			// Slow the chunks slightly so the cancel watcher's abort
			// store lands while plenty of chunks remain unclaimed.
			time.Sleep(2 * time.Microsecond)
			done.Add(int64(hi - lo))
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: err = %v, want context.Canceled", seed, err)
		}
		// Cancellation is observed at chunk claims: the bulk of the
		// range (there are 6250 chunks, cancelled within the first
		// ~500) must never have been processed.
		if done.Load() == 100000 {
			t.Fatalf("seed %d: cancellation at claim %d did not stop the dispatch", seed, cancelAt)
		}

		// A clean follow-up dispatch must cover everything.
		var n atomic.Int64
		if err := p.ForDynamicCtx(nil, 1000, 16, func(worker, lo, hi int) {
			n.Add(int64(hi - lo))
		}); err != nil || n.Load() != 1000 {
			t.Fatalf("seed %d: follow-up dispatch err=%v covered=%d", seed, err, n.Load())
		}
	}
}

func TestPreCancelledCtxSkipsDispatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.RunCtx(ctx, func(w int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("worker body ran under a pre-cancelled ctx")
	}
}

func TestRunCtxOnClosedPool(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	if err := p.RunCtx(nil, func(w int) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if _, err := p.Fallible(nil); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Fallible err = %v, want ErrPoolClosed", err)
	}
}

func TestPlainDispatchOnClosedPoolPanicsWithErrPoolClosed(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		r := recover()
		if err, ok := r.(error); !ok || !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("panic value = %v, want ErrPoolClosed", r)
		}
	}()
	p.Run(func(w int) {})
}

func TestNestedFallibleRegionPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	end, err := p.Fallible(nil)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nested Fallible did not panic")
			}
		}()
		p.Fallible(nil)
	}()
	if err := end(); err != nil {
		t.Fatalf("region close: %v", err)
	}
}

func TestFallibleMultiPhaseDegradesToNoOps(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	end, err := p.Fallible(nil)
	if err != nil {
		t.Fatal(err)
	}
	p.ForDynamic(1000, 10, func(worker, lo, hi int) {
		if lo == 0 {
			panic(fmt.Errorf("phase 1 fails"))
		}
	})
	// Later phases of the region must not execute their bodies.
	var ran atomic.Int64
	p.ForDynamic(1000, 10, func(worker, lo, hi int) { ran.Add(1) })
	p.Run(func(w int) { ran.Add(1) })
	rerr := end()
	var perr *PanicError
	if !errors.As(rerr, &perr) {
		t.Fatalf("end() = %v, want *PanicError", rerr)
	}
	if ran.Load() != 0 {
		t.Fatalf("post-failure phases ran %d bodies, want 0", ran.Load())
	}
	// Region closed: the pool is clean again.
	var n atomic.Int64
	p.ForDynamic(100, 1, func(worker, lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 100 {
		t.Fatalf("post-region dispatch covered %d/100", n.Load())
	}
}

func TestCancelWatcherGoroutinesSettle(t *testing.T) {
	base := runtime.NumGoroutine()
	p := NewPool(4)
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // half the regions see a pre-cancelled ctx
			if err := p.RunCtx(ctx, func(w int) {}); !errors.Is(err, context.Canceled) {
				t.Fatalf("iter %d: %v", i, err)
			}
			continue
		}
		if err := p.RunCtx(ctx, func(w int) {}); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		cancel()
	}
	p.Close()
	settleGoroutines(t, base)
}

func TestBarrierWaitAbortReleases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	b := NewBarrier(4)
	// One worker panics INSTEAD of reaching the barrier — but only
	// after the other three are at (or entering) it — so they must be
	// released by the abort flag instead of deadlocking.
	var released atomic.Int64
	var ready atomic.Int64
	err := p.RunCtx(nil, func(w int) {
		if w == 0 {
			for ready.Load() < 3 {
				runtime.Gosched()
			}
			panic("dies before barrier")
		}
		ready.Add(1)
		if !b.WaitAbort(p) {
			released.Add(1)
		}
	})
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if released.Load() != 3 {
		t.Fatalf("released %d workers via abort, want 3", released.Load())
	}
	b.Reset()
	// Barrier is reusable after Reset: a clean dispatch crosses it.
	var crossed atomic.Int64
	if err := p.RunCtx(nil, func(w int) {
		if b.WaitAbort(p) {
			crossed.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if crossed.Load() != 4 {
		t.Fatalf("crossed %d, want 4", crossed.Load())
	}
}
