package sched

import "sync/atomic"

// defaultGrain is the default minimum number of loop iterations a
// worker claims at once in dynamic schedules. It is large enough to
// amortise the atomic fetch-add, small enough to load-balance the
// skewed per-vertex work of power-law graphs.
const defaultGrain = 1024

// ForStatic splits [0, n) into one contiguous range per worker and
// runs fn(worker, lo, hi) on each. Ranges differ in size by at most
// one. It blocks until all workers finish. Static scheduling is used
// where per-element work is uniform (e.g. buffer merging).
func (p *Pool) ForStatic(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.Run(func(w int) {
		lo, hi := splitRange(n, p.workers, w)
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}

// SplitRange returns the w-th of p near-equal contiguous subranges of
// [0, n) — the static split ForStatic uses, exported for callers that
// partition work inside a fused Pool.Run region.
func SplitRange(n, p, w int) (lo, hi int) { return splitRange(n, p, w) }

// SplitRangeStride returns the w-th of p near-equal contiguous,
// stride-aligned subranges of the flat range [0, n*stride). It is the
// lane-strided split used by the batched (multi-vector) engines, where
// each of n items owns stride consecutive lanes (x[v*stride+j]) and a
// split must never separate an item from its lanes: the flat bounds
// are the SplitRange vertex bounds scaled by the stride.
func SplitRangeStride(n, stride, p, w int) (lo, hi int) {
	vlo, vhi := splitRange(n, p, w)
	return vlo * stride, vhi * stride
}

// splitRange returns the w-th of p near-equal contiguous subranges
// of [0, n).
func splitRange(n, p, w int) (lo, hi int) {
	q, r := n/p, n%p
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// ForDynamic runs fn(worker, lo, hi) over chunks of [0, n) claimed
// with an atomic counter (guided self-scheduling). grain is the chunk
// size; grain <= 0 selects a default. Dynamic scheduling load-balances
// skewed work such as per-vertex edge loops.
func (p *Pool) ForDynamic(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = defaultGrain
	}
	var next atomic.Int64
	p.Run(func(w int) {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(w, lo, hi)
		}
	})
}

// ForEachPart runs fn(worker, part) for every part in [0, nparts),
// dynamically assigning parts to workers. It is used to process
// pre-computed edge-balanced partitions: each part is claimed by
// exactly one worker at a time, matching the paper's requirement that
// "each thread should process only one flipped block at a time".
func (p *Pool) ForEachPart(nparts int, fn func(worker, part int)) {
	if nparts <= 0 {
		return
	}
	var next atomic.Int64
	p.Run(func(w int) {
		for {
			part := int(next.Add(1)) - 1
			if part >= nparts {
				return
			}
			fn(w, part)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
