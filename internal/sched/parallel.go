package sched

// defaultGrain is the default minimum number of loop iterations a
// worker claims at once in dynamic schedules. It is large enough to
// amortise the atomic fetch-add, small enough to load-balance the
// skewed per-vertex work of power-law graphs.
const defaultGrain = 1024

// ForStatic splits [0, n) into one contiguous range per worker and
// runs fn(worker, lo, hi) on each. Ranges differ in size by at most
// one. It blocks until all workers finish. Static scheduling is used
// where per-element work is uniform (e.g. buffer merging). The split
// happens inside the pool workers, so the call allocates nothing.
//
//ihtl:noalloc
func (p *Pool) ForStatic(n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.dispatch(job{staticN: n, rangeFn: fn})
}

// SplitRange returns the w-th of p near-equal contiguous subranges of
// [0, n) — the static split ForStatic uses, exported for callers that
// partition work inside a fused Pool.Run region.
//
//ihtl:noalloc
func SplitRange(n, p, w int) (lo, hi int) { return splitRange(n, p, w) }

// SplitRangeStride returns the w-th of p near-equal contiguous,
// stride-aligned subranges of the flat range [0, n*stride). It is the
// lane-strided split used by the batched (multi-vector) engines, where
// each of n items owns stride consecutive lanes (x[v*stride+j]) and a
// split must never separate an item from its lanes: the flat bounds
// are the SplitRange vertex bounds scaled by the stride.
//
//ihtl:noalloc
func SplitRangeStride(n, stride, p, w int) (lo, hi int) {
	vlo, vhi := splitRange(n, p, w)
	return vlo * stride, vhi * stride
}

// splitRange returns the w-th of p near-equal contiguous subranges
// of [0, n).
//
//ihtl:noalloc
func splitRange(n, p, w int) (lo, hi int) {
	q, r := n/p, n%p
	lo = w*q + min(w, r)
	hi = lo + q
	if w < r {
		hi++
	}
	return lo, hi
}

// ForDynamic runs fn(worker, lo, hi) over chunks of [0, n) claimed
// with an atomic counter (guided self-scheduling). grain is the chunk
// size; grain <= 0 selects a default. Dynamic scheduling load-balances
// skewed work such as per-vertex edge loops. The claim loop runs
// inside the pool workers over the pool's reusable counter, so the
// call allocates nothing.
//
//ihtl:noalloc
func (p *Pool) ForDynamic(n, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = defaultGrain
	}
	p.dispatch(job{dynN: n, grain: grain, rangeFn: fn})
}

// ForEachPart runs fn(worker, part) for every part in [0, nparts),
// dynamically assigning parts to workers. It is used to process
// pre-computed edge-balanced partitions: each part is claimed by
// exactly one worker at a time, matching the paper's requirement that
// "each thread should process only one flipped block at a time".
//
//ihtl:noalloc
func (p *Pool) ForEachPart(nparts int, fn func(worker, part int)) {
	if nparts <= 0 {
		return
	}
	p.dispatch(job{dynN: nparts, partFn: fn})
}

//ihtl:noalloc
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
