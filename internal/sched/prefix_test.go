package sched

import (
	"testing"

	"ihtl/internal/xrand"
)

// TestPrefixSum checks the blocked two-pass parallel scan against the
// sequential reference, across sizes straddling the cutoff and worker
// counts that do and do not divide the length evenly.
func TestPrefixSum(t *testing.T) {
	sizes := []int{0, 1, 2, 7, 100, prefixSumCutoff - 1, prefixSumCutoff, prefixSumCutoff + 1, 3*prefixSumCutoff + 17}
	for _, workers := range []int{1, 3, 4, 7} {
		p := NewPool(workers)
		for _, n := range sizes {
			rng := xrand.New(uint64(n)*31 + uint64(workers))
			a := make([]int64, n)
			for i := range a {
				a[i] = int64(rng.Uint64()%2001) - 1000
			}
			want := append([]int64(nil), a...)
			prefixSumSeq(want)
			PrefixSum(p, a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("workers=%d n=%d: PrefixSum[%d] = %d, want %d", workers, n, i, a[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// TestPrefixSumNilPool covers the sequential fallback path.
func TestPrefixSumNilPool(t *testing.T) {
	a := []int64{3, -1, 4, -1, 5}
	PrefixSum(nil, a)
	want := []int64{3, 2, 6, 5, 10}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("PrefixSum = %v, want %v", a, want)
		}
	}
}
