package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolRunVisitsAllWorkers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var seen [4]atomic.Int32
	p.Run(func(w int) { seen[w].Add(1) })
	for w := range seen {
		if got := seen[w].Load(); got != 1 {
			t.Errorf("worker %d ran %d times, want 1", w, got)
		}
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default pool has %d workers", p.Workers())
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	for i := 0; i < 50; i++ {
		p.Run(func(w int) { total.Add(1) })
	}
	if got := total.Load(); got != 150 {
		t.Fatalf("total executions = %d, want 150", got)
	}
}

func TestPoolRunAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run(func(int) {})
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic or deadlock
}

func coverageCheck(t *testing.T, n int, loop func(mark func(i int))) {
	t.Helper()
	covered := make([]atomic.Int32, n)
	loop(func(i int) { covered[i].Add(1) })
	for i := range covered {
		if c := covered[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times, want 1", i, c)
		}
	}
}

func TestForStaticCoversExactlyOnce(t *testing.T) {
	p := NewPool(7)
	defer p.Close()
	for _, n := range []int{0, 1, 6, 7, 8, 100, 9973} {
		coverageCheck(t, n, func(mark func(int)) {
			p.ForStatic(n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}

func TestForDynamicCoversExactlyOnce(t *testing.T) {
	p := NewPool(5)
	defer p.Close()
	for _, n := range []int{0, 1, 10, 1000, 12345} {
		for _, grain := range []int{1, 3, 64, 0} {
			coverageCheck(t, n, func(mark func(int)) {
				p.ForDynamic(n, grain, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						mark(i)
					}
				})
			})
		}
	}
}

func TestForStealCoversExactlyOnce(t *testing.T) {
	p := NewPool(6)
	defer p.Close()
	for _, n := range []int{0, 1, 5, 6, 7, 1000, 54321} {
		for _, grain := range []int{1, 17, 0} {
			coverageCheck(t, n, func(mark func(int)) {
				p.ForSteal(n, grain, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						mark(i)
					}
				})
			})
		}
	}
}

func TestForStealBalancesSkewedWork(t *testing.T) {
	// One iteration carries almost all the work; stealing must let
	// other workers take the rest rather than idle behind a static
	// boundary. We only verify completion and coverage (timing-based
	// balance assertions are flaky), plus that multiple workers
	// participated.
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	n := 100000
	p.ForSteal(n, 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			count.Add(1)
		}
	})
	if count.Load() != int64(n) {
		t.Fatalf("executed %d iterations, want %d", count.Load(), n)
	}
	// Worker-participation counts are timing dependent (a fast worker
	// may drain everything before peers are scheduled), so only
	// completeness is asserted here; balance is exercised by
	// TestStealSchedulerExhaustion and the coverage tests.
}

func TestForEachPartCoversAllParts(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for _, nparts := range []int{0, 1, 2, 3, 17, 100} {
		coverageCheck(t, nparts, func(mark func(int)) {
			p.ForEachPart(nparts, func(w, part int) { mark(part) })
		})
	}
}

func TestSplitRangeProperties(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw)
		p := int(pRaw)%64 + 1
		prevHi := 0
		for w := 0; w < p; w++ {
			lo, hi := splitRange(n, p, w)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > n/p+1 {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRangeStride(t *testing.T) {
	f := func(nRaw, strideRaw, pRaw uint16) bool {
		n := int(nRaw) % 2000
		stride := int(strideRaw)%16 + 1
		p := int(pRaw)%64 + 1
		prevHi := 0
		for w := 0; w < p; w++ {
			lo, hi := SplitRangeStride(n, stride, p, w)
			// Contiguous coverage of [0, n*stride), always cut on a
			// stride boundary (a whole number of lane rows per worker).
			if lo != prevHi || hi < lo || lo%stride != 0 || hi%stride != 0 {
				return false
			}
			vlo, vhi := SplitRange(n, p, w)
			if lo != vlo*stride || hi != vhi*stride {
				return false
			}
			prevHi = hi
		}
		return prevHi == n*stride
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeBalancedPartsBoundariesValid(t *testing.T) {
	// Skewed "degree" array: vertex 0 owns half of all edges.
	n := 1000
	index := make([]int64, n+1)
	index[1] = 5000
	for v := 1; v < n; v++ {
		index[v+1] = index[v] + int64(v%7)
	}
	for _, nparts := range []int{1, 2, 4, 16, 100} {
		bounds := EdgeBalancedParts(index, nparts)
		if len(bounds) != nparts+1 || bounds[0] != 0 || bounds[nparts] != n {
			t.Fatalf("nparts=%d: bad bounds %v", nparts, bounds[:min(len(bounds), 8)])
		}
		var covered int64
		for p := 0; p < nparts; p++ {
			if bounds[p] > bounds[p+1] {
				t.Fatalf("nparts=%d: decreasing bounds at %d", nparts, p)
			}
			covered += PartEdges(index, bounds, p)
		}
		if covered != index[n] {
			t.Fatalf("nparts=%d: parts cover %d edges, want %d", nparts, covered, index[n])
		}
	}
}

func TestEdgeBalancedPartsActuallyBalances(t *testing.T) {
	// Uniform degrees: every part must get within 2x of the mean.
	n := 10000
	index := make([]int64, n+1)
	for v := 0; v < n; v++ {
		index[v+1] = index[v] + 10
	}
	nparts := 8
	bounds := EdgeBalancedParts(index, nparts)
	mean := index[n] / int64(nparts)
	for p := 0; p < nparts; p++ {
		e := PartEdges(index, bounds, p)
		if e < mean/2 || e > mean*2 {
			t.Fatalf("part %d has %d edges, mean %d", p, e, mean)
		}
	}
}

func TestVertexBalancedParts(t *testing.T) {
	bounds := VertexBalancedParts(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
}

func TestStealSchedulerExhaustion(t *testing.T) {
	s := NewStealScheduler(2)
	s.Reset(10)
	total := 0
	for {
		lo, hi, ok := s.Next(0, 3)
		if !ok {
			break
		}
		total += hi - lo
	}
	if total != 10 {
		t.Fatalf("single worker drained %d iterations, want 10", total)
	}
	if _, _, ok := s.Next(1, 3); ok {
		t.Fatal("worker 1 found work after exhaustion")
	}
}

func BenchmarkForDynamicOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.ForDynamic(1<<16, 1024, func(w, lo, hi int) {})
	}
}

func BenchmarkForStealOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.ForSteal(1<<16, 1024, func(w, lo, hi int) {})
	}
}
