package sched

// ShardGroups maps the P workers of one pool onto N shard-affine
// steal domains: every shard's intra-shard work (flipped tasks, sparse
// partitions, hub buffers) is claimed only by the workers of its
// group, so a shard's cache-resident state stays hot inside its group
// instead of migrating across the whole pool.
//
// Two regimes cover every (P, N):
//
//   - P >= N: workers are cut into N contiguous vertex-balanced
//     groups, one per shard; worker w serves exactly one shard and
//     carries a local index in [0, Size(shard)) inside it.
//   - P < N: shards are cut into P contiguous ranges; worker w serves
//     its shards sequentially and every shard runs single-worker
//     (Size == 1, local index 0).
//
// The mapping is a pure function of (P, N) — no scheduling state —
// so it is computed once at engine construction and read concurrently
// without synchronisation.
type ShardGroups struct {
	workers int
	shards  int
	// bounds are the N+1 worker boundaries of the P >= N regime
	// (group of shard s is [bounds[s], bounds[s+1])); nil when P < N.
	bounds []int
	// shardOf[w] is worker w's shard in the P >= N regime.
	shardOf []int
}

// NewShardGroups computes the worker→shard mapping for a pool of
// `workers` workers over `shards` shards. Both must be >= 1.
func NewShardGroups(workers, shards int) *ShardGroups {
	if workers < 1 || shards < 1 {
		panic("sched: ShardGroups needs >= 1 worker and >= 1 shard")
	}
	g := &ShardGroups{workers: workers, shards: shards}
	if workers < shards {
		return g
	}
	g.bounds = VertexBalancedParts(workers, shards)
	g.shardOf = make([]int, workers)
	for s := 0; s < shards; s++ {
		for w := g.bounds[s]; w < g.bounds[s+1]; w++ {
			g.shardOf[w] = s
		}
	}
	return g
}

// Shards returns the half-open shard range [lo, hi) worker w serves.
// In the P >= N regime the range always has length 1.
//
//ihtl:noalloc
func (g *ShardGroups) Shards(w int) (lo, hi int) {
	if g.bounds != nil {
		s := g.shardOf[w]
		return s, s + 1
	}
	return splitRange(g.shards, g.workers, w)
}

// Local returns worker w's local index inside shard s's group, in
// [0, Size(s)). s must be one of the shards Shards(w) reports.
//
//ihtl:noalloc
func (g *ShardGroups) Local(w, s int) int {
	if g.bounds != nil {
		return w - g.bounds[s]
	}
	return 0
}

// Size returns the number of workers in shard s's group.
//
//ihtl:noalloc
func (g *ShardGroups) Size(s int) int {
	if g.bounds != nil {
		return g.bounds[s+1] - g.bounds[s]
	}
	return 1
}
