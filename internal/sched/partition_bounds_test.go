package sched

import (
	"runtime"
	"testing"
)

// checkBounds asserts bounds are monotone and cover [0, n].
func checkBounds(t *testing.T, label string, bounds []int, nparts, n int) {
	t.Helper()
	if len(bounds) != nparts+1 {
		t.Fatalf("%s: %d boundaries, want %d", label, len(bounds), nparts+1)
	}
	if bounds[0] != 0 || bounds[nparts] != n {
		t.Fatalf("%s: bounds %v do not cover [0, %d]", label, bounds, n)
	}
	for p := 0; p < nparts; p++ {
		if bounds[p] > bounds[p+1] {
			t.Fatalf("%s: bounds %v not monotone at %d", label, bounds, p)
		}
	}
}

// TestSplitRangeStrideBoundaries pins the lane-strided static split at
// the boundary shapes the batched engines hit: empty range, a single
// item, more parts than items, and stride 1 (which must equal
// SplitRange exactly).
func TestSplitRangeStrideBoundaries(t *testing.T) {
	for _, tc := range []struct{ n, stride, p int }{
		{0, 4, 3}, // empty range: every part empty
		{1, 4, 3}, // one item: exactly one part gets its lanes
		{2, 8, 5}, // parts > items
		{7, 3, 3}, // uneven split
		{5, 1, 2}, // stride 1 == SplitRange
		{6, 2, 1}, // one part takes everything
		{100, 4, 7},
	} {
		covered := 0
		prevHi := 0
		for w := 0; w < tc.p; w++ {
			lo, hi := SplitRangeStride(tc.n, tc.stride, tc.p, w)
			if lo != prevHi {
				t.Fatalf("n=%d stride=%d p=%d w=%d: lo %d != previous hi %d (gap or overlap)",
					tc.n, tc.stride, tc.p, w, lo, prevHi)
			}
			if lo%tc.stride != 0 || hi%tc.stride != 0 {
				t.Fatalf("n=%d stride=%d p=%d w=%d: [%d, %d) splits an item's lanes",
					tc.n, tc.stride, tc.p, w, lo, hi)
			}
			if s1lo, s1hi := SplitRange(tc.n, tc.p, w); lo != s1lo*tc.stride || hi != s1hi*tc.stride {
				t.Fatalf("n=%d stride=%d p=%d w=%d: [%d, %d) is not the scaled SplitRange [%d, %d)",
					tc.n, tc.stride, tc.p, w, lo, hi, s1lo, s1hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n*tc.stride || prevHi != tc.n*tc.stride {
			t.Fatalf("n=%d stride=%d p=%d: parts cover %d lanes ending at %d, want %d",
				tc.n, tc.stride, tc.p, covered, prevHi, tc.n*tc.stride)
		}
	}
}

// TestEdgeBalancedPartsBoundaries pins the CSR partitioner at boundary
// shapes: an empty vertex range, one vertex, more parts than vertices,
// all-equal degrees, and an all-zero-degree range.
func TestEdgeBalancedPartsBoundaries(t *testing.T) {
	for _, tc := range []struct {
		name   string
		index  []int64
		nparts int
	}{
		{"empty", []int64{0}, 3},
		{"one-vertex", []int64{0, 5}, 3},
		{"parts-gt-len", []int64{0, 2, 4}, 7},
		{"all-equal", []int64{0, 3, 6, 9, 12, 15, 18}, 3},
		{"all-zero", []int64{0, 0, 0, 0, 0}, 2},
		{"one-hub", []int64{0, 0, 100, 100, 101}, 4},
	} {
		n := len(tc.index) - 1
		bounds := EdgeBalancedParts(tc.index, tc.nparts)
		checkBounds(t, tc.name, bounds, tc.nparts, n)
		var covered int64
		for p := 0; p < tc.nparts; p++ {
			covered += PartEdges(tc.index, bounds, p)
		}
		if covered != tc.index[n] {
			t.Fatalf("%s: parts cover %d edges, want %d", tc.name, covered, tc.index[n])
		}
	}
	// All-equal degrees must split the vertex range near-evenly: no
	// part may exceed ceil(n/nparts) vertices.
	bounds := EdgeBalancedParts([]int64{0, 3, 6, 9, 12, 15, 18}, 3)
	for p := 0; p < 3; p++ {
		if sz := bounds[p+1] - bounds[p]; sz > 2 {
			t.Fatalf("all-equal degrees: part %d holds %d of 6 vertices", p, sz)
		}
	}
}

// TestEdgeBalancedPartsListBoundaries pins the row-list partitioner —
// the degree-aware sparse schedule's heavy-row splitter — at the same
// boundary shapes: empty list, one row, more parts than rows, and
// all-equal weights.
func TestEdgeBalancedPartsListBoundaries(t *testing.T) {
	index := []int64{0, 4, 4, 10, 12, 12, 20} // degrees 4,0,6,2,0,8
	for _, tc := range []struct {
		name   string
		rows   []int32
		nparts int
	}{
		{"empty", nil, 3},
		{"one-row", []int32{2}, 3},
		{"parts-gt-len", []int32{0, 5}, 6},
		{"all-equal", []int32{0, 0, 0, 0}, 2},
		{"mixed", []int32{5, 2, 0, 3, 1}, 3},
	} {
		bounds := EdgeBalancedPartsList(index, tc.rows, tc.nparts)
		checkBounds(t, tc.name, bounds, tc.nparts, len(tc.rows))
	}
	// All-equal weights split the list evenly.
	bounds := EdgeBalancedPartsList(index, []int32{0, 0, 0, 0}, 2)
	if bounds[1] != 2 {
		t.Fatalf("all-equal weights: middle boundary %d, want 2", bounds[1])
	}
}

// TestShardGroups pins the worker→shard affinity map in both regimes:
// W ≥ N (disjoint worker groups, one shard each) and W < N (each
// worker serves a run of shards alone).
func TestShardGroups(t *testing.T) {
	for _, tc := range []struct{ workers, shards int }{
		{1, 1}, {1, 4}, {2, 5}, {3, 7}, // W < N (and 1/1)
		{4, 4}, {5, 2}, {8, 3}, // W >= N
		{runtime.GOMAXPROCS(0) + 2, 4},
	} {
		sg := NewShardGroups(tc.workers, tc.shards)
		served := make([]int, tc.shards) // how many workers serve each shard
		locals := make(map[[2]int]bool)  // (shard, local index) uniqueness
		for w := 0; w < tc.workers; w++ {
			lo, hi := sg.Shards(w)
			if lo < 0 || hi > tc.shards {
				t.Fatalf("w%d/n%d: worker %d serves [%d, %d) outside [0, %d)",
					tc.workers, tc.shards, w, lo, hi, tc.shards)
			}
			for s := lo; s < hi; s++ {
				served[s]++
				l := sg.Local(w, s)
				if l < 0 || l >= sg.Size(s) {
					t.Fatalf("w%d/n%d: Local(%d, %d) = %d outside [0, %d)",
						tc.workers, tc.shards, w, s, l, sg.Size(s))
				}
				if locals[[2]int{s, l}] {
					t.Fatalf("w%d/n%d: two workers share local index %d of shard %d",
						tc.workers, tc.shards, l, s)
				}
				locals[[2]int{s, l}] = true
			}
		}
		for s, n := range served {
			if n != sg.Size(s) {
				t.Fatalf("w%d/n%d: shard %d served by %d workers, Size says %d",
					tc.workers, tc.shards, s, n, sg.Size(s))
			}
			if n < 1 {
				t.Fatalf("w%d/n%d: shard %d served by no worker", tc.workers, tc.shards, s)
			}
		}
		// Every worker index must be covered: total (shard, local)
		// assignments ≥ workers when W ≥ N, == workers·shards-runs
		// otherwise; the uniqueness + Size checks above already pin the
		// partition, so just check no worker was left idle in W ≤ N.
		if tc.workers <= tc.shards {
			for w := 0; w < tc.workers; w++ {
				if lo, hi := sg.Shards(w); hi <= lo {
					t.Fatalf("w%d/n%d: worker %d serves no shard", tc.workers, tc.shards, w)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardGroups(0, 1) did not panic")
		}
	}()
	NewShardGroups(0, 1)
}
