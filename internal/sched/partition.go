package sched

import "sort"

// EdgeBalancedParts splits the vertex range [0, len(index)-1) into
// nparts contiguous ranges with approximately equal numbers of edges,
// where index is a CSR/CSC offset array (index[v+1]-index[v] is the
// degree of v). This is the GraphGrind partitioning used to
// load-balance pull traversal: vertex counts may differ wildly between
// parts, but edge counts — and therefore work — are even.
//
// The returned slice has nparts+1 vertex boundaries, with bounds[0]==0
// and bounds[nparts]==len(index)-1.
func EdgeBalancedParts(index []int64, nparts int) []int {
	n := len(index) - 1
	if n < 0 {
		panic("sched: empty index array")
	}
	if nparts < 1 {
		panic("sched: nparts must be >= 1")
	}
	total := index[n]
	bounds := make([]int, nparts+1)
	bounds[nparts] = n
	for p := 1; p < nparts; p++ {
		target := index[0] + total*int64(p)/int64(nparts)
		// First vertex whose offset reaches the target.
		v := sort.Search(n, func(i int) bool { return index[i] >= target })
		if v < bounds[p-1] {
			v = bounds[p-1]
		}
		bounds[p] = v
	}
	return bounds
}

// EdgeBalancedPartsList is EdgeBalancedParts over an arbitrary ROW
// LIST instead of the full vertex range: rows are indices into the
// CSR/CSC offset array index, and the list is split into nparts
// contiguous sub-lists with approximately equal total edge counts.
// The degree-aware sparse schedule uses it to cut the heavy-row list
// into stealable parts whose work is balanced by edges, not rows —
// a handful of mega-degree rows otherwise serialise behind one worker.
//
// The returned slice has nparts+1 list positions, with bounds[0]==0
// and bounds[nparts]==len(rows).
func EdgeBalancedPartsList(index []int64, rows []int32, nparts int) []int {
	if nparts < 1 {
		panic("sched: nparts must be >= 1")
	}
	n := len(rows)
	prefix := make([]int64, n+1)
	for i, r := range rows {
		prefix[i+1] = prefix[i] + index[r+1] - index[r]
	}
	total := prefix[n]
	bounds := make([]int, nparts+1)
	bounds[nparts] = n
	for p := 1; p < nparts; p++ {
		target := total * int64(p) / int64(nparts)
		v := sort.Search(n, func(i int) bool { return prefix[i] >= target })
		if v < bounds[p-1] {
			v = bounds[p-1]
		}
		bounds[p] = v
	}
	return bounds
}

// VertexBalancedParts splits [0, n) into nparts contiguous ranges of
// near-equal vertex counts, returning nparts+1 boundaries.
func VertexBalancedParts(n, nparts int) []int {
	if nparts < 1 {
		panic("sched: nparts must be >= 1")
	}
	bounds := make([]int, nparts+1)
	for p := 0; p <= nparts; p++ {
		lo, _ := splitRange(n, nparts, min(p, nparts-1))
		if p == nparts {
			bounds[p] = n
		} else {
			bounds[p] = lo
		}
	}
	return bounds
}

// PartEdges reports the number of edges covered by part p of the given
// boundaries over the offset array index.
func PartEdges(index []int64, bounds []int, p int) int64 {
	return index[bounds[p+1]] - index[bounds[p]]
}
