package sched

import (
	"runtime"
	"sync/atomic"
)

// The fused-region primitives below let an engine run what used to be
// several barriered Pool dispatches as ONE dispatch: workers
// synchronise inside the parallel region with a spin barrier or with
// per-item completion counters, paying nanoseconds of shared-counter
// traffic instead of a channel send + WaitGroup round-trip per worker
// per phase.

// Barrier is a reusable sense-reversing spin barrier for exactly N
// participants. It is intended for short intra-dispatch phase
// boundaries inside a Pool.Run region, where every pool worker is a
// participant; unlike sync.WaitGroup it involves no channel traffic
// and can be crossed an arbitrary number of times per region.
type Barrier struct {
	n       int64
	arrived atomic.Int64
	sense   atomic.Uint64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sched: barrier needs >= 1 participant")
	}
	return &Barrier{n: int64(n)}
}

// Wait blocks until all n participants have called Wait, then releases
// them all. The barrier is immediately reusable for the next phase.
//
//ihtl:noalloc
func (b *Barrier) Wait() {
	gen := b.sense.Load()
	if b.arrived.Add(1) == b.n {
		// Last arriver: reset the count for the next generation, then
		// release. Spinners only touch sense, so the order is safe.
		b.arrived.Store(0)
		b.sense.Add(1)
		return
	}
	for b.sense.Load() == gen {
		runtime.Gosched()
	}
}

// WaitAbort is Wait for barriers crossed inside fallible regions: it
// additionally polls the pool's abort flag while spinning and returns
// false without crossing when the dispatch is aborting (a sibling
// worker panicked before arriving, or the region's context was
// cancelled) — the release that keeps panic isolation deadlock-free.
// A last arriver always completes the crossing and returns true.
// After an aborted crossing the barrier may hold straggler arrival
// counts; the orchestrator must Reset it before reuse (the engines do
// this in their post-failure state recovery).
//
//ihtl:noalloc
func (b *Barrier) WaitAbort(p *Pool) bool {
	gen := b.sense.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.sense.Add(1)
		return true
	}
	for b.sense.Load() == gen {
		if p.Aborted() {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// Reset re-arms a barrier abandoned by an aborted crossing, clearing
// partial arrival counts. It must only be called while no worker is
// inside Wait/WaitAbort (i.e. between dispatches).
func (b *Barrier) Reset() {
	b.arrived.Store(0)
}

// Countdowns is a set of atomic countdown latches, one per item. The
// fused iHTL Step uses one latch per flipped block: every task of the
// block decrements it on completion, and the worker whose decrement
// reaches zero knows all buffer contributions for the block are
// visible (atomic decrements give acquire/release ordering) and merges
// it — the only gating the merge needs, instead of a full barrier
// between the push and merge phases.
type Countdowns struct {
	counts []atomic.Int64
}

// NewCountdowns creates n latches, all at zero; call Reset before use.
func NewCountdowns(n int) *Countdowns {
	return &Countdowns{counts: make([]atomic.Int64, n)}
}

// Len returns the number of latches.
//
//ihtl:noalloc
func (c *Countdowns) Len() int { return len(c.counts) }

// Reset arms every latch with its count from per (len(per) must equal
// Len). It must not race with Done.
//
//ihtl:noalloc
func (c *Countdowns) Reset(per []int) {
	if len(per) != len(c.counts) {
		panic("sched: Countdowns.Reset length mismatch")
	}
	for i, n := range per {
		c.counts[i].Store(int64(n))
	}
}

// Done records one completion against latch i and reports whether this
// call released it (brought it exactly to zero). Everything written by
// goroutines whose Done calls preceded the releasing one
// happens-before the release, per the Go memory model's atomics
// guarantee.
//
//ihtl:noalloc
func (c *Countdowns) Done(i int) bool {
	return c.counts[i].Add(-1) == 0
}
