package sched

import (
	"sync/atomic"
	"testing"
)

// TestBarrierPhases checks the happens-before guarantee across many
// reused generations: every worker's plain (non-atomic) write before
// generation g must be visible to every worker after it. Run under
// -race this also validates the barrier against the race detector's
// modelling of the atomics involved.
func TestBarrierPhases(t *testing.T) {
	const workers = 5
	const phases = 500
	p := NewPool(workers)
	defer p.Close()
	b := NewBarrier(workers)
	cells := make([]int, workers)
	var mismatches atomic.Int64
	p.Run(func(w int) {
		for phase := 1; phase <= phases; phase++ {
			cells[w] = phase
			b.Wait()
			sum := 0
			for _, c := range cells {
				sum += c
			}
			if sum != phase*workers {
				mismatches.Add(1)
			}
			// Second barrier so no worker races ahead into the next
			// phase's writes while peers still read this one.
			b.Wait()
		}
	})
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d phase sums were wrong: writes not ordered by Barrier.Wait", n)
	}
}

func TestBarrierRejectsZeroParticipants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

// TestCountdownsGateStress models the fused engine's merge gating: for
// each latch, workers accumulate plain (non-atomic) contributions into
// per-worker buffers and count down; whichever worker releases the
// latch sums ALL workers' buffers for it. Correct totals — and a clean
// -race run — require the Done release to order every contributor's
// prior writes before the releaser's reads, exactly the property the
// engine's per-block merge relies on.
func TestCountdownsGateStress(t *testing.T) {
	const workers = 4
	const items = 64
	const perItem = 9
	p := NewPool(workers)
	defer p.Close()
	c := NewCountdowns(items)
	arm := make([]int, items)
	for i := range arm {
		arm[i] = perItem
	}
	bufs := make([][]int, workers)
	for w := range bufs {
		bufs[w] = make([]int, items)
	}
	results := make([]int, items)

	for round := 0; round < 50; round++ {
		c.Reset(arm)
		clear(results)
		p.ForSteal(items*perItem, 1, func(w, lo, hi int) {
			for task := lo; task < hi; task++ {
				item := task % items
				bufs[w][item]++ // plain write, ordered only by Done
				if c.Done(item) {
					sum := 0
					for t := 0; t < workers; t++ {
						sum += bufs[t][item]
						bufs[t][item] = 0
					}
					results[item] = sum
				}
			}
		})
		for i, r := range results {
			if r != perItem {
				t.Fatalf("round %d: item %d summed %d contributions, want %d", round, i, r, perItem)
			}
		}
	}
}

func TestCountdownsResetLengthMismatchPanics(t *testing.T) {
	c := NewCountdowns(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with wrong length did not panic")
		}
	}()
	c.Reset([]int{1, 2})
}

// TestForStealWithReusesScheduler checks coverage and reuse across
// many loops over one caller-owned scheduler.
func TestForStealWithReusesScheduler(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	s := NewStealScheduler(p.Workers())
	for _, n := range []int{0, 1, 5, 1000, 4096} {
		coverageCheck(t, n, func(mark func(int)) {
			p.ForStealWith(s, n, 7, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					mark(i)
				}
			})
		})
	}
}

func TestForStealWithWrongWorkerCountPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	s := NewStealScheduler(3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched scheduler did not panic")
		}
	}()
	p.ForStealWith(s, 10, 1, func(w, lo, hi int) {})
}

// TestForStealAllocationFree pins the satellite fix: ForSteal reuses
// the pool's scheduler and the pool's completion WaitGroup, so a
// steady-state loop allocates nothing (the closure below is hoisted
// out of the measured region).
func TestForStealAllocationFree(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	fn := func(w, lo, hi int) {}
	p.ForSteal(1<<12, 64, fn) // warm worker stacks
	if allocs := testing.AllocsPerRun(50, func() { p.ForSteal(1<<12, 64, fn) }); allocs != 0 {
		t.Errorf("ForSteal allocates %.1f objects per run, want 0", allocs)
	}
	s := NewStealScheduler(p.Workers())
	if allocs := testing.AllocsPerRun(50, func() { p.ForStealWith(s, 1<<12, 64, fn) }); allocs != 0 {
		t.Errorf("ForStealWith allocates %.1f objects per run, want 0", allocs)
	}
}

// TestRunAllocationFree pins the fused-dispatch foundation: Run itself
// must not allocate per call (prebuilt worker body, reused WaitGroup).
func TestRunAllocationFree(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	fn := func(w int) { count.Add(1) }
	p.Run(fn)
	if allocs := testing.AllocsPerRun(50, func() { p.Run(fn) }); allocs != 0 {
		t.Errorf("Run allocates %.1f objects per run, want 0", allocs)
	}
}

// TestPoolDispatchSequence guards the reused completion WaitGroup:
// dispatches from one orchestrator, back to back, must all complete
// with full worker participation.
func TestPoolDispatchSequence(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total atomic.Int64
	for i := 0; i < 200; i++ {
		p.Run(func(w int) { total.Add(1) })
		p.ForSteal(10, 1, func(w, lo, hi int) { total.Add(int64(hi - lo)) })
	}
	if got := total.Load(); got != 200*(3+10) {
		t.Fatalf("total = %d, want %d", got, 200*(3+10))
	}
}
