package ihtl_test

import (
	"testing"

	"ihtl"
)

func TestLocalitySimulationAPI(t *testing.T) {
	g, err := ihtl.GenerateWeb(30_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ihtl.ScaledCacheConfig(64)
	pullStats, pullBuckets := ihtl.SimulatePullLocality(g, cfg)
	if pullStats.Loads == 0 || len(pullBuckets) == 0 {
		t.Fatal("pull simulation empty")
	}
	ihtlStats, ihtlBuckets, err := ihtl.SimulateIHTLLocality(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ihtlStats.Loads == 0 || len(ihtlBuckets) == 0 {
		t.Fatal("iHTL simulation empty")
	}
	// The headline claim through the public API: the top-degree
	// bucket's miss rate falls under iHTL.
	last := func(b []ihtl.DegreeMissBucket) ihtl.DegreeMissBucket {
		for i := len(b) - 1; i >= 0; i-- {
			if b[i].Vertices > 0 {
				return b[i]
			}
		}
		t.Fatal("no buckets")
		return ihtl.DegreeMissBucket{}
	}
	if last(ihtlBuckets).MissRate() >= last(pullBuckets).MissRate() {
		t.Fatalf("iHTL hub miss rate %.3f not below pull %.3f",
			last(ihtlBuckets).MissRate(), last(pullBuckets).MissRate())
	}
	// Xeon geometry is exported and valid.
	if err := ihtl.XeonCacheConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReorderAPI(t *testing.T) {
	g, err := ihtl.GenerateRMAT(9, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []ihtl.ReorderAlgorithm{
		ihtl.ReorderDegree, ihtl.ReorderSlashBurn, ihtl.ReorderGOrder, ihtl.ReorderRabbit,
		ihtl.ReorderHubSort, ihtl.ReorderVEBO,
	} {
		rg, perm, err := ihtl.Reorder(g, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if rg.NumV != g.NumV || rg.NumE != g.NumE || len(perm) != g.NumV {
			t.Fatalf("%s: reorder changed shape", alg)
		}
		if err := rg.Validate(); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if _, _, err := ihtl.Reorder(g, ihtl.ReorderAlgorithm("bogus")); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestSparseOrderAPI(t *testing.T) {
	g, err := ihtl.GenerateRMAT(9, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{
		HubsPerBlock: 32,
		SparseOrder:  ihtl.RabbitSparseOrder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the plain engine in original ID space.
	plain, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ihtl.PageRank(plain, pool, ihtl.PageRankOptions{MaxIters: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		d := ranks[v] - want[v]
		if d > 1e-12 || d < -1e-12 {
			t.Fatalf("SparseOrder changed results at %d", v)
		}
	}
}

func TestStatsAPI(t *testing.T) {
	g, err := ihtl.GenerateWeb(10_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := ihtl.SummarizeInDegrees(g)
	if s.Max <= 0 || s.Mean <= 0 {
		t.Fatalf("bad summary %+v", s)
	}
	if a := ihtl.HubAsymmetricity(g, 50); a < 0.5 {
		t.Fatalf("web hub asymmetricity %v too low", a)
	}
}
