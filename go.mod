module ihtl

go 1.22
