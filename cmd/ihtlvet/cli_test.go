package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"ihtl/internal/analyzers"
)

// exec runs the CLI in-process and returns its exit code plus captured
// stdout/stderr.
func execVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestListShowsAllAnalyzers pins -list to the full 8-pass suite: a
// pass added to All() without surfacing in the CLI (or removed
// silently) fails here.
func TestListShowsAllAnalyzers(t *testing.T) {
	code, out, _ := execVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	wantNames := []string{
		"noalloc", "skipzero", "atomicfield", "parcapture",
		"ctxleak", "determinism", "faultsite", "nopanic",
	}
	for _, name := range wantNames {
		if !strings.Contains(out, name) {
			t.Errorf("-list output is missing analyzer %q", name)
		}
	}
	if got := len(analyzers.All()); got != len(wantNames) {
		t.Errorf("analyzers.All() has %d passes, the CLI contract pins %d; update this test and the docs together", got, len(wantNames))
	}
}

// TestJSONGolden pins the -json output shape — field order, root-
// relative paths, sort order — against a recorded golden file. The
// fixture package carries one determinism and one nopanic finding.
func TestJSONGolden(t *testing.T) {
	code, out, stderr := execVet(t, "-json", "cmd/ihtlvet/testdata/src/jsondemo")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (diagnostics reported); stderr:\n%s", code, stderr)
	}
	golden, err := os.ReadFile("testdata/jsondemo_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out != string(golden) {
		t.Errorf("-json output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", out, golden)
	}
}

// TestExitCodes pins the vet-compatible exit code contract: 0 clean,
// 1 diagnostics, 2 usage/load errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"-analyzers=noalloc", "cmd/ihtlvet/testdata/src/jsondemo"}, 0},
		{"findings", []string{"cmd/ihtlvet/testdata/src/jsondemo"}, 1},
		{"unknown analyzer", []string{"-analyzers=bogus"}, 2},
		{"unknown package", []string{"internal/definitely/not/here"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := execVet(t, tc.args...)
			if code != tc.want {
				t.Errorf("run(%v) exit = %d, want %d; stderr:\n%s", tc.args, code, tc.want, stderr)
			}
		})
	}
}

// TestGateWaiverIndex exercises the gates' annotation loader against
// the real module: the //ihtl:nobce kernels must be indexed, and the
// one deliberate //ihtl:allow-boundscheck waiver must cover its line.
func TestGateWaiverIndex(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := analyzers.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	ann, err := loadAnnotations(root, []*gateSpec{bceGate, escapeGate})
	if err != nil {
		t.Fatal(err)
	}
	nobce := ann.funcs["nobce"]
	total := 0
	for _, frs := range nobce {
		total += len(frs)
	}
	if total == 0 {
		t.Fatal("no //ihtl:nobce functions indexed; the kernel annotations are gone or the loader is broken")
	}
	for _, fn := range []string{"pushTaskFlat", "pbDrainBucket", "sparsePullRange", "DecodeChunkCSR"} {
		found := false
		for _, frs := range nobce {
			for _, fr := range frs {
				if fr.name == fn {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("expected //ihtl:nobce function %s in the gate index", fn)
		}
	}
	if len(ann.waived["allow-boundscheck"]) == 0 {
		t.Error("expected at least one //ihtl:allow-boundscheck waiver (the pbDrainBucket clear line)")
	}
}
