// Command ihtlvet runs the repo's static-analysis suite (see
// internal/analyzers): noalloc, skipzero, atomicfield, parcapture,
// ctxleak, determinism, faultsite and nopanic — plus two
// compiler-assisted gates, -bce and -escape (see gates.go).
//
// Usage:
//
//	ihtlvet [-json] [-analyzers=noalloc,skipzero,...] [-bce] [-escape] [packages]
//
// Package patterns follow go vet conventions for this module: "./...",
// "internal/core/...", directory paths, or full import paths. With no
// patterns, the whole module is analyzed.
//
// Exit codes mirror go vet: 0 when the tree is clean, 1 when any
// diagnostic is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ihtl/internal/analyzers"
)

// jsonDiagnostic is the stable machine-readable diagnostic shape
// emitted by -json: a flat array, one element per finding, sorted by
// file/line/column.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ihtlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	bce := fs.Bool("bce", false, "also run the bounds-check gate: compile with -d=ssa/check_bce and fail on checks inside //ihtl:nobce functions")
	escape := fs.Bool("escape", false, "also run the escape gate: compile with -m and fail on heap escapes inside //ihtl:noescape functions")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ihtlvet [-json] [-analyzers=a,b] [-bce] [-escape] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nGates:\n")
		fmt.Fprintf(stderr, "  %-12s %s\n", "bce", "no bounds checks survive in //ihtl:nobce functions (compiler-assisted)")
		fmt.Fprintf(stderr, "  %-12s %s\n", "escape", "no heap escapes in //ihtl:noescape functions (compiler-assisted)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := analyzers.All()
	if *names != "" {
		var err error
		suite, err = analyzers.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
			return 2
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
		return 2
	}
	root, err := analyzers.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
		return 2
	}
	loader, err := analyzers.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
		return 2
	}
	diags, err := analyzers.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
		return 2
	}

	var gates []*gateSpec
	if *bce {
		gates = append(gates, bceGate)
	}
	if *escape {
		gates = append(gates, escapeGate)
	}
	if len(gates) > 0 {
		gateDiags, err := runGates(root, fs.Args(), gates)
		if err != nil {
			fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
			return 2
		}
		diags = append(diags, gateDiags...)
		analyzers.SortDiagnostics(diags)
	}

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relTo(root, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "ihtlvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s:%d:%d: %s (%s)\n",
				relTo(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relTo shortens path to be relative to root when possible, keeping
// diagnostics readable and stable across checkouts.
func relTo(root, path string) string {
	if rest, ok := strings.CutPrefix(path, root+string(os.PathSeparator)); ok {
		return rest
	}
	return path
}
