package main

// Compiler-assisted gates. The syntactic passes in internal/analyzers
// check what the source says; the -bce and -escape gates check what
// the compiler actually did to it. Both shell out to go build with
// diagnostic gcflags, map the emitted positions into the line ranges
// of directive-annotated functions, and report anything that lands
// inside one:
//
//   - -bce runs -gcflags=-d=ssa/check_bce and fails on any
//     "Found IsInBounds"/"Found IsSliceInBounds" inside an
//     //ihtl:nobce function. A deliberate residual check (e.g. a
//     clamped clear() kept for the runtime memclr) carries
//     //ihtl:allow-boundscheck <reason> on its line.
//   - -escape runs -gcflags=-m and fails on any "escapes to heap" /
//     "moved to heap" inside an //ihtl:noescape function; waiver
//     //ihtl:allow-escape <reason>.
//
// Both gates are toolchain-sensitive: a new compiler may prove more
// (findings disappear — fine) or less (findings appear — the gate is
// doing its job). CI runs them on the pinned Go version recorded in
// .github/workflows/ci.yml.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"ihtl/internal/analyzers"
)

// funcRange is one annotated function's position span plus the lines
// in its file that carry the gate's allow-waiver.
type funcRange struct {
	name   string
	lo, hi int // 1-based inclusive line range
}

// gateSpec describes one compiler gate.
type gateSpec struct {
	name      string // diagnostic analyzer name
	gcflags   string
	directive string // function-doc opt-in
	waiver    string // line-scoped allow-directive
	match     *regexp.Regexp
	message   func(fn string, detail string) string
}

var bceGate = &gateSpec{
	name:      "bce",
	gcflags:   "-d=ssa/check_bce",
	directive: "nobce",
	waiver:    "allow-boundscheck",
	match:     regexp.MustCompile(`Found (IsInBounds|IsSliceInBounds)`),
	message: func(fn, detail string) string {
		return fmt.Sprintf("bounds check (%s) survives in //ihtl:nobce function %s; restructure the access or waive with //ihtl:allow-boundscheck <reason>", detail, fn)
	},
}

var escapeGate = &gateSpec{
	name:      "escape",
	gcflags:   "-m",
	directive: "noescape",
	waiver:    "allow-escape",
	match:     regexp.MustCompile(`escapes to heap|moved to heap`),
	message: func(fn, detail string) string {
		return fmt.Sprintf("%s in //ihtl:noescape function %s; keep hot-path values on the stack or waive with //ihtl:allow-escape <reason>", detail, fn)
	},
}

// moduleAnnotations is the syntax-only index the gates match compiler
// positions against: per module-relative file, the annotated function
// ranges and the waived lines. One parse serves both gates.
type moduleAnnotations struct {
	root string
	// funcs[directive][relpath] -> ranges
	funcs map[string]map[string][]funcRange
	// waived[waiverName][relpath] -> set of line numbers the directive
	// silences (the directive's own line and the line below it, the
	// same rule as analyzers.lineSuppressed).
	waived map[string]map[string]map[int]bool
}

// loadAnnotations parses every non-test .go file under root (skipping
// testdata and hidden directories) with comments, recording the gate
// directives. Syntax-only: the gates need line ranges, not types.
func loadAnnotations(root string, gates []*gateSpec) (*moduleAnnotations, error) {
	ann := &moduleAnnotations{
		root:   root,
		funcs:  make(map[string]map[string][]funcRange),
		waived: make(map[string]map[string]map[int]bool),
	}
	for _, g := range gates {
		ann.funcs[g.directive] = make(map[string][]funcRange)
		ann.waived[g.waiver] = make(map[string]map[int]bool)
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, g := range gates {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !analyzers.FuncHasDirective(fd, g.directive) {
					continue
				}
				ann.funcs[g.directive][rel] = append(ann.funcs[g.directive][rel], funcRange{
					name: fd.Name.Name,
					lo:   fset.Position(fd.Pos()).Line,
					hi:   fset.Position(fd.End()).Line,
				})
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//ihtl:"+g.waiver) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, "//ihtl:"+g.waiver)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue
					}
					lines := ann.waived[g.waiver][rel]
					if lines == nil {
						lines = make(map[int]bool)
						ann.waived[g.waiver][rel] = lines
					}
					l := fset.Position(c.Pos()).Line
					lines[l] = true
					lines[l+1] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ann, nil
}

// diagLine matches one compiler diagnostic: path:line:col: message.
var diagLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// runGate builds the given packages with the gate's gcflags and maps
// matching compiler output into diagnostics against the annotation
// index. Paths in the compiler output are relative to root because the
// build runs there.
func runGate(g *gateSpec, ann *moduleAnnotations, patterns []string) ([]analyzers.Diagnostic, error) {
	args := append([]string{"build", "-gcflags=" + g.gcflags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ann.root
	out, err := cmd.CombinedOutput()
	var diags []analyzers.Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := diagLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !g.match.MatchString(m[4]) {
			continue
		}
		rel := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := ""
		for _, fr := range ann.funcs[g.directive][filepath.FromSlash(rel)] {
			if fr.lo <= lineNo && lineNo <= fr.hi {
				fn = fr.name
				break
			}
		}
		if fn == "" {
			continue // outside every annotated function
		}
		if ann.waived[g.waiver][filepath.FromSlash(rel)][lineNo] {
			continue
		}
		diags = append(diags, analyzers.Diagnostic{
			Analyzer: g.name,
			Pos: token.Position{
				Filename: filepath.Join(ann.root, filepath.FromSlash(rel)),
				Line:     lineNo,
				Column:   col,
			},
			Message: g.message(fn, g.match.FindString(m[4])),
		})
	}
	if err != nil && len(diags) == 0 {
		// The build itself failed (diagnostic flags never fail a
		// compilable build): surface the compiler's own output.
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return diags, nil
}

// runGates executes the requested gates and returns their combined
// diagnostics.
func runGates(root string, patterns []string, gates []*gateSpec) ([]analyzers.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ann, err := loadAnnotations(root, gates)
	if err != nil {
		return nil, err
	}
	var diags []analyzers.Diagnostic
	for _, g := range gates {
		ds, err := runGate(g, ann, patterns)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
