// Package jsondemo carries two stable findings for the ihtlvet CLI
// golden test: one determinism, one nopanic, in this order.
//
//ihtl:deterministic
package jsondemo

func sum(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

// Decode is a fake trust boundary that panics.
//
//ihtl:nopanic
func Decode(b []byte) int {
	if len(b) == 0 {
		panic("empty")
	}
	return int(b[0])
}
