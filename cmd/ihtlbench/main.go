// Command ihtlbench regenerates the paper's evaluation tables and
// figures on the synthetic dataset registry.
//
// Usage:
//
//	ihtlbench -exp fig7                 # one experiment, full registry
//	ihtlbench -exp all -small           # everything, small datasets
//	ihtlbench -exp table5 -datasets sk,uu
//	ihtlbench -list                     # show experiments and datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ihtl/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (fig1|fig2|fig7|table2|table3|table4|fig8|table5|table6|fig9|all)")
		datasets  = flag.String("datasets", "", "comma-separated dataset names (default: all in registry)")
		small     = flag.Bool("small", false, "use the reduced-size registry")
		workers   = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		iters     = flag.Int("iters", 8, "timed iterations per measurement")
		list      = flag.Bool("list", false, "list experiments and datasets, then exit")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		stepjson  = flag.String("stepjson", "", "measure per-kernel step times and write them as JSON to this path (e.g. results/BENCH_step.json), then exit")
		batch     = flag.Bool("batch", false, "with -stepjson: also sweep the batched (multi-vector) kernels at K = 1,4,8,16 over the batch registry (rmat18 + sk-s)")
		encjson   = flag.String("encjson", "", "run the flat-vs-varint block-encoding ablation (plus the scale-18 mmap residency comparison) and write it as JSON to this path (e.g. results/BENCH_compress.json), then exit")
		buildjson = flag.String("buildjson", "", "measure sequential and parallel preprocessing times (graph build, rank, select, relabel, blocks) and write them as JSON to this path (e.g. results/BENCH_build.json), then exit")
		faults    = flag.String("faults", "", "run the fault-recovery smoke (PageRank with seeded cancel/NaN/panic faults vs clean) and write the timings as JSON to this path (e.g. results/BENCH_faults.json), then exit")
		faultseed = flag.Uint64("faultseed", 1, "with -faults: seed deriving the fault iterations")
		shardjson = flag.String("shardjson", "", "run the sharded-execution ablation (fused engine at each -shards count, with the exchange phase split out) and write it as JSON to this path (e.g. results/BENCH_shard.json), then exit")
		shards    = flag.String("shards", "", "with -shardjson: comma-separated shard counts to sweep (default 1,2,4,8)")
		servejson = flag.String("servejson", "", "drive the ranking daemon with a closed-loop Zipf query load at each -servelanes width and write throughput/latency/lane-fill JSON to this path (e.g. results/BENCH_serve.json), then exit")
		servelane = flag.String("servelanes", "", "with -servejson: comma-separated coalescing widths to sweep (default 1,2,4,8)")
		servescal = flag.Int("servescale", 12, "with -servejson: R-MAT scale of the served graph")
	)
	flag.Parse()

	reg := bench.Registry()
	if *small {
		reg = bench.SmallRegistry()
	}
	if *list {
		fmt.Println("experiments:", strings.Join(bench.Experiments(), " "), "all")
		fmt.Println("datasets:")
		for _, d := range reg {
			fmt.Printf("  %-10s %-7s analog of %s\n", d.Name, d.Kind, d.Analog)
		}
		return
	}

	selected := reg
	if *datasets != "" {
		selected = nil
		for _, name := range strings.Split(*datasets, ",") {
			d, err := bench.ByName(reg, strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, d)
		}
	}

	env := bench.NewEnv(*workers)
	defer env.Close()
	env.Iters = *iters
	env.Out = os.Stdout
	env.CSV = *csv

	if *faults != "" {
		rep, err := bench.RunFaultsJSON(env, bench.FaultDataset(*small), *faultseed)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteStepJSON(*faults, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *faults)
		return
	}

	if *servejson != "" {
		var widths []int
		if *servelane != "" {
			for _, s := range strings.Split(*servelane, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fatal(fmt.Errorf("invalid -servelanes entry %q", s))
				}
				widths = append(widths, n)
			}
		}
		rep, err := bench.RunServeJSON(env, *servescal, widths)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteServeJSON(*servejson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *servejson)
		return
	}

	if *shardjson != "" {
		var counts []int
		if *shards != "" {
			for _, s := range strings.Split(*shards, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fatal(fmt.Errorf("invalid -shards entry %q", s))
				}
				counts = append(counts, n)
			}
		}
		// The ablation runs on its own registry (scale-14 R-MAT + the
		// SK-Domain web analog) unless datasets were named explicitly.
		abl := bench.ShardRegistry()
		if *datasets != "" {
			abl = selected
		}
		rep, err := bench.RunShardJSON(env, abl, counts)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteShardJSON(*shardjson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *shardjson)
		return
	}

	if *buildjson != "" {
		rep, err := bench.RunBuildJSON(env, selected)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBuildJSON(*buildjson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *buildjson)
		return
	}

	if *encjson != "" {
		// The ablation runs on its own registry (scale-14 R-MAT + the
		// SK-Domain web analog) unless datasets were named explicitly.
		abl := bench.EncRegistry()
		if *datasets != "" {
			abl = selected
		}
		rep, err := bench.RunEncJSON(env, abl)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteEncJSON(*encjson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *encjson)
		return
	}

	if *stepjson != "" {
		rep, err := bench.RunStepJSON(env, selected)
		if err != nil {
			fatal(err)
		}
		if *batch {
			// The sweep runs on its own registry (the scale-18 R-MAT
			// acceptance dataset) unless datasets were named explicitly.
			sweep := bench.BatchSweepRegistry()
			if *datasets != "" {
				sweep = selected
			}
			if err := bench.AppendBatchSweep(rep, env, sweep, bench.BatchKs()); err != nil {
				fatal(err)
			}
		}
		if err := bench.WriteStepJSON(*stepjson, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measurements to %s\n", len(rep.Results), *stepjson)
		return
	}

	var err error
	if *exp == "all" {
		err = bench.RunAll(env, selected)
	} else {
		err = bench.Run(env, *exp, selected)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ihtlbench:", err)
	os.Exit(1)
}
