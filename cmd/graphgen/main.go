// Command graphgen generates a synthetic graph and writes it in the
// repository's binary format.
//
// Usage:
//
//	graphgen -kind rmat -scale 18 -ef 16 -seed 42 -o social.bin
//	graphgen -kind web -n 100000 -seed 7 -o web.bin
//	graphgen -kind er -n 100000 -m 1000000 -o control.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"ihtl/internal/gen"
	"ihtl/internal/graph"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "generator: rmat | web | er | pa")
		scale    = flag.Int("scale", 16, "rmat: log2 vertex count")
		ef       = flag.Int("ef", 16, "rmat: edges per vertex")
		n        = flag.Int("n", 100000, "web/er/pa: vertex count")
		m        = flag.Int("m", 1000000, "er: edge count")
		k        = flag.Int("k", 8, "pa: edges per new vertex")
		seed     = flag.Uint64("seed", 42, "random seed")
		out      = flag.String("o", "graph.bin", "output path")
		compress = flag.Bool("compress", false, "write the delta-varint compressed format")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch *kind {
	case "rmat":
		g, err = gen.RMAT(gen.DefaultRMAT(*scale, *ef, *seed))
	case "web":
		g, err = gen.Web(gen.DefaultWeb(*n, *seed))
	case "er":
		g, err = gen.ErdosRenyi(*n, *m, *seed)
	case "pa":
		g, err = gen.PreferentialAttachment(*n, *k, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if *compress {
		err = g.SaveFileCompressed(*out)
	} else {
		err = g.SaveFile(*out)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumV, g.NumE)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
