// Command pagerank runs PageRank on a graph file with a selectable
// traversal engine and reports per-iteration timing — the
// single-dataset version of the paper's Figure 7 measurement.
//
// Usage:
//
//	pagerank -i graph.bin -engine ihtl -iters 20
//	pagerank -i graph.bin -engine pull -top 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph file")
		engine  = flag.String("engine", "ihtl", "engine: ihtl | pull | push-atomic | push-buffered | push-partitioned | prop-blocked")
		sparse  = flag.String("sparse", "auto", "iHTL sparse-block kernel: auto | pull | pull-degree | pb")
		enc     = flag.String("encoding", "auto", "iHTL block-topology encoding: auto | flat | varint")
		iters   = flag.Int("iters", 20, "PageRank iterations")
		top     = flag.Int("top", 10, "print the top-K ranked vertices")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		hpb     = flag.Int("hubs-per-block", 0, "iHTL hubs per flipped block (0 = paper default)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("missing -i"))
	}
	g, err := graph.LoadFileAuto(*in)
	if err != nil {
		fatal(err)
	}
	pool := sched.NewPool(*workers)
	defer pool.Close()

	outDeg := make([]int, g.NumV)
	var stepper spmv.Stepper
	var toOld func([]float64) []float64

	prepStart := time.Now()
	switch *engine {
	case "ihtl":
		kernel, err := core.ParseSparseKernel(*sparse)
		if err != nil {
			fatal(err)
		}
		encoding, err := core.ParseBlockEncoding(*enc)
		if err != nil {
			fatal(err)
		}
		ih, err := core.Build(g, core.Params{HubsPerBlock: *hpb})
		if err != nil {
			fatal(err)
		}
		e, err := core.NewEngineOpts(ih, pool, core.EngineOptions{SparseKernel: kernel, BlockEncoding: encoding})
		if err != nil {
			fatal(err)
		}
		for nv := 0; nv < g.NumV; nv++ {
			outDeg[nv] = g.OutDegree(ih.OldID[nv])
		}
		stepper = e
		toOld = func(in []float64) []float64 {
			out := make([]float64, len(in))
			ih.PermuteToOld(in, out)
			return out
		}
	default:
		var dir spmv.Direction
		switch *engine {
		case "pull":
			dir = spmv.Pull
		case "push-atomic":
			dir = spmv.PushAtomic
		case "push-buffered":
			dir = spmv.PushBuffered
		case "push-partitioned":
			dir = spmv.PushPartitioned
		case "prop-blocked":
			dir = spmv.PropBlocked
		default:
			fatal(fmt.Errorf("unknown engine %q", *engine))
		}
		e, err := spmv.NewEngine(g, pool, dir, spmv.Options{})
		if err != nil {
			fatal(err)
		}
		for v := 0; v < g.NumV; v++ {
			outDeg[v] = g.OutDegree(graph.VID(v))
		}
		stepper = e
		toOld = func(in []float64) []float64 { return in }
	}
	prep := time.Since(prepStart)

	start := time.Now()
	res, err := analytics.RunPageRank(stepper, outDeg, pool, analytics.PageRankOptions{MaxIters: *iters, Tol: -1})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE)
	fmt.Printf("engine: %s, preprocessing %.1f ms\n", *engine, prep.Seconds()*1000)
	fmt.Printf("%d iterations in %.1f ms (%.2f ms/iter)\n",
		res.Iters, elapsed.Seconds()*1000, elapsed.Seconds()*1000/float64(res.Iters))

	ranks := toOld(res.Ranks)
	type rv struct {
		v graph.VID
		r float64
	}
	all := make([]rv, len(ranks))
	for v, r := range ranks {
		all[v] = rv{graph.VID(v), r}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	if *top > len(all) {
		*top = len(all)
	}
	fmt.Printf("top %d:\n", *top)
	for i := 0; i < *top; i++ {
		fmt.Printf("  #%d vertex %d  rank %.3e  (in-degree %d)\n",
			i+1, all[i].v, all[i].r, g.InDegree(all[i].v))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pagerank:", err)
	os.Exit(1)
}
