// Command analytics runs one of the repository's graph analytics on a
// graph file — PageRank's siblings from the paper's §1 motivation and
// §6 future-work list.
//
// Usage:
//
//	analytics -i graph.bin -algo bfs -src 0
//	analytics -i graph.bin -algo cc
//	analytics -i graph.bin -algo sssp -src 5
//	analytics -i graph.bin -algo triangles
//	analytics -i graph.bin -algo hits -iters 30
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ihtl/internal/analytics"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph file")
		algo    = flag.String("algo", "bfs", "algorithm: bfs | cc | sssp | triangles | hits | kcore")
		src     = flag.Uint("src", 0, "source vertex for bfs/sssp")
		iters   = flag.Int("iters", 30, "max iterations for hits")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("missing -i"))
	}
	g, err := graph.LoadFileAuto(*in)
	if err != nil {
		fatal(err)
	}
	if *algo == "bfs" || *algo == "sssp" {
		if int(*src) >= g.NumV {
			fatal(fmt.Errorf("source %d out of range [0,%d)", *src, g.NumV))
		}
	}
	pool := sched.NewPool(*workers)
	defer pool.Close()
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE)

	start := time.Now()
	switch *algo {
	case "bfs":
		dist := analytics.BFS(g, pool, graph.VID(*src))
		reportDistances("hops", dist, start)
	case "sssp":
		dist := analytics.SSSP(g, pool, graph.VID(*src))
		reportDistances("weighted distance", dist, start)
	case "cc":
		cc := analytics.ConnectedComponents(g, pool)
		elapsed := time.Since(start)
		sizes := map[graph.VID]int{}
		for _, l := range cc {
			sizes[l]++
		}
		largest := 0
		for _, s := range sizes {
			if s > largest {
				largest = s
			}
		}
		fmt.Printf("connected components: %d (largest %d vertices, %.1f%%) in %.1f ms\n",
			len(sizes), largest, 100*float64(largest)/float64(g.NumV), elapsed.Seconds()*1000)
	case "triangles":
		count := analytics.TriangleCount(g, pool)
		fmt.Printf("triangles: %d in %.1f ms\n", count, time.Since(start).Seconds()*1000)
	case "kcore":
		cores := analytics.CoreNumbers(g)
		k, v := analytics.MaxCore(cores)
		fmt.Printf("degeneracy %d (vertex %d) in %.1f ms\n", k, v, time.Since(start).Seconds()*1000)
	case "hits":
		fwd, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
		if err != nil {
			fatal(err)
		}
		rev, err := spmv.NewEngine(g.Transpose(), pool, spmv.Pull, spmv.Options{})
		if err != nil {
			fatal(err)
		}
		res, err := analytics.RunHITS(fwd, rev, analytics.HITSOptions{MaxIters: *iters, Pool: pool})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("HITS converged in %d iterations (%.1f ms)\n",
			res.Iters, time.Since(start).Seconds()*1000)
		printTop("authorities", res.Authority, 5)
		printTop("hubs", res.Hub, 5)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func reportDistances(metric string, dist []int64, start time.Time) {
	elapsed := time.Since(start)
	reached := 0
	var max int64
	for _, d := range dist {
		if d != analytics.InfDist {
			reached++
			if d > max {
				max = d
			}
		}
	}
	fmt.Printf("reached %d/%d vertices, max %s %d, in %.1f ms\n",
		reached, len(dist), metric, max, elapsed.Seconds()*1000)
}

func printTop(label string, scores []float64, k int) {
	type sv struct {
		v graph.VID
		s float64
	}
	all := make([]sv, len(scores))
	for v, s := range scores {
		all[v] = sv{graph.VID(v), s}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s > all[j].s })
	if k > len(all) {
		k = len(all)
	}
	fmt.Printf("top %s:", label)
	for i := 0; i < k; i++ {
		fmt.Printf(" %d(%.3f)", all[i].v, all[i].s)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analytics:", err)
	os.Exit(1)
}
