// Command graphinfo prints the structural report of a graph file:
// degree summaries, skew, asymmetricity by degree (paper Figure 9),
// and the iHTL structure it would produce (paper Table 5's "Graph
// Statistics" columns).
//
// Usage:
//
//	graphinfo -i graph.bin
//	graphinfo -i graph.bin -hubs-per-block 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/stats"
	"ihtl/internal/trace"
)

func main() {
	var (
		in    = flag.String("i", "", "input graph file")
		hpb   = flag.Int("hubs-per-block", 0, "iHTL hubs per flipped block (0 = paper default)")
		reuse = flag.Bool("reuse", false, "also print reuse-distance locality comparison (pull vs iHTL)")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("missing -i"))
	}
	g, err := graph.LoadFileAuto(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d vertices, %d edges\n\n", *in, g.NumV, g.NumE)

	for _, kind := range []stats.DegreeKind{stats.InDegree, stats.OutDegree} {
		s := stats.Summarize(g, kind)
		fmt.Printf("%s-degree: min %d, median %d, mean %.2f, p99 %d, max %d\n",
			kind, s.Min, s.Median, s.Mean, s.P99, s.Max)
		fmt.Printf("  skew: Gini %.3f, top 1%% of vertices hold %.1f%% of edges\n",
			s.Gini, 100*s.TopSharePct1)
	}

	fmt.Printf("\nasymmetricity by in-degree (Figure 9):\n")
	for _, b := range stats.AsymmetryByDegree(g) {
		fmt.Printf("  [%6d,%6d): %8d vertices, mean %.3f\n",
			b.DegreeLo, b.DegreeHi, b.Count, b.MeanAsymmetricity)
	}
	fmt.Printf("  top-100 hub mean: %.3f (social ≈ 0, web ≈ 1)\n", stats.HubAsymmetricity(g, 100))

	ih, err := core.Build(g, core.Params{HubsPerBlock: *hpb})
	if err != nil {
		fatal(err)
	}
	s := ih.Stats(g)
	fmt.Printf("\niHTL structure (B = %d):\n", ih.HubsPerBlock)
	fmt.Printf("  flipped blocks:  %d\n", s.NumBlocks)
	fmt.Printf("  hubs:            %d (%.2f%% of vertices)\n", s.NumHubs, 100*s.HubFrac)
	fmt.Printf("  VWEH:            %.1f%% of vertices\n", 100*s.VWEHFrac)
	fmt.Printf("  min hub degree:  %d\n", s.MinHubDegree)
	fmt.Printf("  flipped edges:   %.1f%% of edges\n", 100*s.FlippedEdgeFrac)
	fmt.Printf("  topology:        %.2f MiB vs %.2f MiB CSC (%.1f%% overhead)\n",
		float64(s.TopologyBytes)/(1<<20), float64(s.CSCBytes)/(1<<20), 100*s.OverheadFrac)

	printCompression(os.Stdout, ih)

	if *reuse {
		const vertexBytes, lineBytes = 8, 64
		pull := trace.ReuseDistances(trace.PullRandomStream(g, vertexBytes, lineBytes))
		ihtl := trace.ReuseDistances(trace.IHTLRandomStream(ih, vertexBytes, lineBytes))
		fmt.Printf("\nreuse-distance of random accesses (lines of %dB):\n", lineBytes)
		fmt.Printf("  median finite distance: pull %d, iHTL %d\n",
			trace.MedianFinite(pull), trace.MedianFinite(ihtl))
		for _, capKB := range []int64{16, 64, 256, 1024} {
			lines := capKB << 10 / lineBytes
			fmt.Printf("  LRU hit ratio @ %4d KB: pull %.3f, iHTL %.3f\n",
				capKB, trace.HitRatioAt(pull, lines), trace.HitRatioAt(ihtl, lines))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphinfo:", err)
	os.Exit(1)
}
