package main

import (
	"bytes"
	"testing"

	"ihtl/internal/core"
	"ihtl/internal/graph"
)

// TestPrintCompressionGolden pins the compression table on the paper's
// 8-vertex example (B = 2, as in the paper's worked figures). The
// byte counts are deterministic — the build, the row sort and the
// encoder are all deterministic — so any drift here means the on-disk
// or in-memory encoding changed shape.
func TestPrintCompressionGolden(t *testing.T) {
	g := graph.PaperExample()
	ih, err := core.Build(g, core.Params{HubsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	printCompression(&buf, ih)

	// The tiny example compresses badly (chunk directory overhead
	// dominates 14 edges) — the point of the pin is the exact shape,
	// not the ratio; real graphs are measured by ihtlbench -encjson.
	const want = `
block topology compression (flat vs varint adjacency):
  flipped[0]            9 edges, flat       36 B, varint       39 B, ratio 0.92x
  sparse                5 edges, flat       20 B, varint       35 B, ratio 0.57x
  total                          flat       56 B, varint       74 B, ratio 0.76x
`
	if got := buf.String(); got != want {
		t.Errorf("compression table drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
