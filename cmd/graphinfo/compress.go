package main

import (
	"fmt"
	"io"

	"ihtl/internal/core"
)

// printCompression reports the flat-vs-varint topology bytes of every
// block. Flat counts the adjacency IDs only (4 bytes each); varint
// counts the chunked gap encoding including its chunk directory
// (Chunked.EncodedBytes). The row Index is resident and identical
// under both encodings, so it is excluded from the ratio — the table
// answers "how much smaller is the stream the hot loop reads".
func printCompression(w io.Writer, ih *core.IHTL) {
	ih.EnsureEncoded()
	fmt.Fprintf(w, "\nblock topology compression (flat vs varint adjacency):\n")
	var flatTotal, encTotal int64
	row := func(label string, edges, enc int64) {
		flat := 4 * edges
		flatTotal += flat
		encTotal += enc
		ratio := 0.0
		if enc > 0 {
			ratio = float64(flat) / float64(enc)
		}
		fmt.Fprintf(w, "  %-14s %8d edges, flat %8d B, varint %8d B, ratio %.2fx\n",
			label, edges, flat, enc, ratio)
	}
	for i := range ih.Blocks {
		fb := &ih.Blocks[i]
		row(fmt.Sprintf("flipped[%d]", i), fb.NumEdges(), fb.Enc.EncodedBytes())
	}
	sp := &ih.Sparse
	var sparseEdges int64
	if n := len(sp.Index); n > 0 {
		sparseEdges = sp.Index[n-1]
	}
	row("sparse", sparseEdges, sp.Enc.EncodedBytes())
	ratio := 0.0
	if encTotal > 0 {
		ratio = float64(flatTotal) / float64(encTotal)
	}
	fmt.Fprintf(w, "  %-14s %8s        flat %8d B, varint %8d B, ratio %.2fx\n",
		"total", "", flatTotal, encTotal, ratio)
}
