// Command ihtlconvert converts between the repository's graph
// formats and pre-builds iHTL binaries, completing the paper's
// amortisation story ("the preprocessing overhead can be completely
// amortized ... if the iHTL graph is stored in its binary format on
// disk", §4.2).
//
// Usage:
//
//	ihtlconvert -i snap.txt -from edgelist -o graph.bin
//	ihtlconvert -i graph.bin -to compressed -o graph.cbin
//	ihtlconvert -i graph.bin -to ihtl -o graph.ihtl -hubs-per-block 4096
//	ihtlconvert -i graph.bin -to edgelist -o graph.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ihtl/internal/core"
	"ihtl/internal/graph"
)

func main() {
	var (
		in   = flag.String("i", "", "input path")
		out  = flag.String("o", "", "output path")
		from = flag.String("from", "auto", "input format: auto | edgelist")
		to   = flag.String("to", "flat", "output format: flat | compressed | edgelist | ihtl")
		hpb  = flag.Int("hubs-per-block", 0, "iHTL hubs per flipped block (0 = paper default)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("need -i and -o"))
	}

	var g *graph.Graph
	var err error
	switch *from {
	case "auto":
		g, err = graph.LoadFileAuto(*in)
	case "edgelist":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		g, _, err = graph.ReadEdgeList(f)
		f.Close()
	default:
		err = fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *in, g.NumV, g.NumE)

	switch *to {
	case "flat":
		err = g.SaveFile(*out)
	case "compressed":
		err = g.SaveFileCompressed(*out)
	case "edgelist":
		var f *os.File
		if f, err = os.Create(*out); err == nil {
			if err = g.WriteEdgeList(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
	case "ihtl":
		start := time.Now()
		ih, berr := core.Build(g, core.Params{HubsPerBlock: *hpb})
		if berr != nil {
			fatal(berr)
		}
		fmt.Printf("built iHTL graph in %.1f ms: %d blocks, %d hubs, %.1f%% flipped edges\n",
			time.Since(start).Seconds()*1000, len(ih.Blocks), ih.NumHubs,
			100*float64(ih.FlippedEdges())/float64(max64(1, ih.NumE)))
		err = ih.SaveFile(*out)
	default:
		err = fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.2f MiB)\n", *out, float64(info.Size())/(1<<20))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ihtlconvert:", err)
	os.Exit(1)
}
