// Command ihtlconvert converts between the repository's graph
// formats and pre-builds iHTL binaries, completing the paper's
// amortisation story ("the preprocessing overhead can be completely
// amortized ... if the iHTL graph is stored in its binary format on
// disk", §4.2).
//
// Usage:
//
//	ihtlconvert -i snap.txt -from edgelist -o graph.bin
//	ihtlconvert -i graph.bin -to compressed -o graph.cbin
//	ihtlconvert -i graph.bin -to ihtl -o graph.ihtl -hubs-per-block 4096
//	ihtlconvert -i graph.bin -to ihtlv2 -o graph.ihtl2
//	ihtlconvert -i graph.ihtl -from ihtl -to ihtlv2 -o graph.ihtl2
//	ihtlconvert -i graph.bin -to edgelist -o graph.txt
//
// -from ihtl reads a serialised engine file of either version, so old
// v1 binaries upgrade to the mmap-friendly v2 layout in one pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ihtl/internal/atomicio"
	"ihtl/internal/core"
	"ihtl/internal/graph"
)

func main() {
	var (
		in   = flag.String("i", "", "input path")
		out  = flag.String("o", "", "output path")
		from = flag.String("from", "auto", "input format: auto | edgelist | ihtl")
		to   = flag.String("to", "flat", "output format: flat | compressed | edgelist | ihtl | ihtlv2")
		hpb  = flag.Int("hubs-per-block", 0, "iHTL hubs per flipped block (0 = paper default)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("need -i and -o"))
	}

	var g *graph.Graph
	var ih *core.IHTL
	var err error
	switch *from {
	case "auto":
		g, err = graph.LoadFileAuto(*in)
	case "edgelist":
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		g, _, err = graph.ReadEdgeList(f)
		f.Close()
	case "ihtl":
		ih, err = core.LoadFile(*in)
	default:
		err = fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		fatal(err)
	}
	if ih != nil {
		fmt.Printf("loaded %s: iHTL graph, %d vertices, %d edges, %d blocks\n", *in, ih.NumV, ih.NumE, len(ih.Blocks))
		if *to != "ihtl" && *to != "ihtlv2" {
			fatal(fmt.Errorf("-from ihtl supports only -to ihtl or -to ihtlv2, not %q", *to))
		}
	} else {
		fmt.Printf("loaded %s: %d vertices, %d edges\n", *in, g.NumV, g.NumE)
	}
	buildIHTL := func() *core.IHTL {
		if ih != nil {
			return ih
		}
		start := time.Now()
		built, berr := core.Build(g, core.Params{HubsPerBlock: *hpb})
		if berr != nil {
			fatal(berr)
		}
		fmt.Printf("built iHTL graph in %.1f ms: %d blocks, %d hubs, %.1f%% flipped edges\n",
			time.Since(start).Seconds()*1000, len(built.Blocks), built.NumHubs,
			100*float64(built.FlippedEdges())/float64(max64(1, built.NumE)))
		return built
	}

	switch *to {
	case "flat":
		err = g.SaveFile(*out)
	case "compressed":
		err = g.SaveFileCompressed(*out)
	case "edgelist":
		err = atomicio.WriteFile(*out, g.WriteEdgeList)
	case "ihtl":
		b := buildIHTL()
		b.EnsureFlatTopology() // the v1 format stores the flat adjacency
		err = b.SaveFile(*out)
	case "ihtlv2":
		err = buildIHTL().SaveFileV2(*out)
	default:
		err = fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%.2f MiB)\n", *out, float64(info.Size())/(1<<20))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ihtlconvert:", err)
	os.Exit(1)
}
