// Command ihtlserve is the ranking-as-a-service daemon: it mmap-loads
// a pre-built engine file and serves personalized-PageRank queries
// (coalesced into batched SpMV traversals) and checkpoint-backed
// background ranking jobs over HTTP.
//
// Usage:
//
//	ihtlserve -engine graph.ihtl2 -spool /var/lib/ihtl/spool -addr :8372
//
// Queries:
//
//	curl -s localhost:8372/v1/ppr -d '{"source": 42}'
//	curl -s localhost:8372/v1/jobs -d '{"algo": "pagerank"}'
//	curl -s localhost:8372/v1/jobs/<id>
//	curl -s localhost:8372/varz
//
// SIGTERM/SIGINT drain in-flight queries and park running jobs at
// their latest checkpoint (they resume on the next start); if the
// drain exceeds -drain-timeout, everything in flight is cancelled
// hard. A kill -9 loses at most one checkpoint interval of job
// progress: the next start resumes from the spool bit-for-bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ihtl/internal/serve"
)

func main() {
	var (
		enginePath = flag.String("engine", "", "serialised engine graph (ihtlconvert output)")
		spoolDir   = flag.String("spool", "", "checkpoint spool directory (empty disables job durability)")
		addr       = flag.String("addr", "127.0.0.1:8372", "listen address")
		workers    = flag.Int("workers", 4, "pool width per engine (bit-for-bit contracts are pinned to it)")
		lanes      = flag.Int("lanes", 4, "max queries coalesced per batch")
		fillWindow = flag.Duration("fill-window", 2*time.Millisecond, "how long a batch waits for more queries")
		slots      = flag.Int("slots", 1, "concurrent batches, each on its own engine")
		queueLimit = flag.Int("queue-limit", 64, "pending-query bound; beyond it requests are shed with 429")
		timeout    = flag.Duration("timeout", 2*time.Second, "default per-query deadline")
		ckptEvery  = flag.Int("checkpoint-every", 4, "job spool cadence in iterations")
		jobRetries = flag.Int("job-retries", 2, "restarts of a faulted job before it fails")
		jobDelay   = flag.Duration("job-iter-delay", 0, "throttle jobs by sleeping this long per checkpoint")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "hard deadline for the SIGTERM drain")
		maxIters   = flag.Int("max-iters", 0, "query iteration cap (0 = analytics default)")
		tol        = flag.Float64("tol", 0, "query convergence tolerance (0 = analytics default)")
	)
	flag.Parse()
	if *enginePath == "" {
		fatal(fmt.Errorf("need -engine"))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	srv, err := serve.New(serve.Config{
		EnginePath:      *enginePath,
		SpoolDir:        *spoolDir,
		Workers:         *workers,
		Lanes:           *lanes,
		FillWindow:      *fillWindow,
		Slots:           *slots,
		QueueLimit:      *queueLimit,
		DefaultTimeout:  *timeout,
		CheckpointEvery: *ckptEvery,
		JobRetries:      *jobRetries,
		JobIterDelay:    *jobDelay,
		Query:           serve.JobOptions{MaxIters: *maxIters, Tol: *tol, RedistributeDangling: true},
		Logger:          logger,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The resolved address on stdout is the harness handshake: e2e
	// drivers pass :0 and scrape the port.
	fmt.Printf("ihtlserve listening on %s\n", ln.Addr())
	logger.Info("serving", "addr", ln.Addr().String(), "engine", *enginePath,
		"workers", *workers, "lanes", *lanes, "vertices", srv.NumVertices())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-sigCtx.Done():
		logger.Info("draining", "timeout", *drainT)
		hardCtx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		httpSrv.Shutdown(hardCtx) //nolint:errcheck // drain continues regardless
		if err := srv.Drain(hardCtx); err != nil {
			logger.Warn("hard stop after drain deadline", "err", err)
		}
		srv.Close()
	case err := <-errCh:
		srv.Close()
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ihtlserve:", err)
	os.Exit(1)
}
