// Package ihtl is the public API of this repository: a Go
// implementation of in-Hub Temporal Locality (iHTL) SpMV-based graph
// processing, after Koohi Esfahani, Kilpatrick & Vandierendonck,
// "Exploiting in-Hub Temporal Locality in SpMV-based Graph
// Processing", ICPP 2021.
//
// iHTL observes that pull-direction SpMV has poor temporal locality
// at in-hub vertices (their huge in-neighbour sets sweep the cache)
// and fixes it by traversing the in-edges of hubs in push direction
// through cache-resident per-thread buffers ("flipped blocks"), while
// the remaining edges stay in pull direction ("sparse block"). Every
// edge is traversed exactly once per iteration.
//
// Quick start:
//
//	pool := ihtl.NewPool(0)                        // one worker per core
//	defer pool.Close()
//	g, _ := ihtl.GenerateRMATOn(pool, 18, 16, 42)  // or ihtl.LoadGraph(path)
//	eng, _ := ihtl.NewEngine(g, pool, ihtl.Params{})
//	ranks, _ := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory.
package ihtl

import (
	"fmt"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Graph is a directed graph in dual CSR/CSC form. See
// internal/graph.Graph for methods.
type Graph = graph.Graph

// Edge is a directed edge.
type Edge = graph.Edge

// VID is a vertex identifier.
type VID = graph.VID

// Pool is a reusable worker pool shared by all engines.
type Pool = sched.Pool

// Params controls iHTL construction: hubs per flipped block (or the
// cache size to derive it from), the flipped-block admission
// threshold, and limits. The zero value reproduces the paper's
// defaults (B = 1 MiB L2 / 8-byte vertex data, 50% threshold).
type Params = core.Params

// IHTL is a built iHTL graph: relabeling arrays, flipped blocks and
// the sparse block.
type IHTL = core.IHTL

// BuildBreakdown reports where preprocessing time went (rank, select,
// relabel, blocks; wall and per-worker busy), mirroring the engine's
// Step Breakdown. Obtain it via (*Engine).IHTL().BuildStats().
type BuildBreakdown = core.BuildBreakdown

// Stepper is the common interface of all SpMV engines: one Step
// computes dst[v] = Σ src[u] over in-neighbours u.
type Stepper = spmv.Stepper

// PageRankOptions configures PageRank.
type PageRankOptions = analytics.PageRankOptions

// NewPool creates a worker pool; workers <= 0 selects GOMAXPROCS.
// Close it when done.
func NewPool(workers int) *Pool { return sched.NewPool(workers) }

// BuildGraph constructs a graph from an edge list over [0, numV),
// deduplicating edges and removing zero-degree vertices as the paper
// does for its datasets. It builds sequentially; use BuildGraphOn to
// build across a pool's workers.
func BuildGraph(numV int, edges []Edge) (*Graph, error) {
	return BuildGraphOn(nil, numV, edges)
}

// BuildGraphOn is BuildGraph parallelised on pool: the CSR/CSC
// counting sorts, adjacency sorting, dedup and zero-degree compaction
// all run across the pool's workers and produce a graph bit-for-bit
// identical to the sequential build. A nil pool builds sequentially.
func BuildGraphOn(pool *Pool, numV int, edges []Edge) (*Graph, error) {
	opt := graph.DefaultBuildOptions()
	opt.Pool = pool
	return graph.Build(numV, edges, opt)
}

// LoadGraph reads a graph from the binary format written by
// (*Graph).SaveFile.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// GenerateRMAT generates a social-network-like R-MAT graph with
// 2^scale vertices and ~2^scale*edgeFactor edges (Graph500
// parameters).
func GenerateRMAT(scale, edgeFactor int, seed uint64) (*Graph, error) {
	return GenerateRMATOn(nil, scale, edgeFactor, seed)
}

// GenerateRMATOn is GenerateRMAT with the graph build parallelised on
// pool. The edge stream is deterministic and the parallel build is
// bit-for-bit identical to the sequential one, so the resulting graph
// does not depend on the pool or its worker count.
func GenerateRMATOn(pool *Pool, scale, edgeFactor int, seed uint64) (*Graph, error) {
	cfg := gen.DefaultRMAT(scale, edgeFactor, seed)
	cfg.Pool = pool
	return gen.RMAT(cfg)
}

// GenerateWeb generates a web-like graph with n pages: extreme
// asymmetric in-hubs and host-block community structure.
func GenerateWeb(n int, seed uint64) (*Graph, error) {
	return GenerateWebOn(nil, n, seed)
}

// GenerateWebOn is GenerateWeb with the graph build parallelised on
// pool; like GenerateRMATOn the result is independent of the pool.
func GenerateWebOn(pool *Pool, n int, seed uint64) (*Graph, error) {
	cfg := gen.DefaultWeb(n, seed)
	cfg.Pool = pool
	return gen.Web(cfg)
}

// Engine is an iHTL SpMV engine over a fixed graph. It implements
// Stepper in iHTL (relabeled) vertex-ID space and exposes the
// relabeling through IHTL().
type Engine struct {
	ih  *core.IHTL
	eng *core.Engine
	g   *graph.Graph
}

// NewEngine builds the iHTL graph of g with the given parameters and
// prepares an Algorithm 3 engine on the pool. Preprocessing (hub
// ranking, relabeling, block construction) runs across the same pool
// the engine later steps on; the per-phase times are available via
// IHTL().BuildStats().
func NewEngine(g *Graph, pool *Pool, p Params) (*Engine, error) {
	ih, err := core.BuildWith(g, p, pool)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(ih, pool)
	if err != nil {
		return nil, err
	}
	return &Engine{ih: ih, eng: eng, g: g}, nil
}

// Step implements Stepper (in iHTL ID space).
func (e *Engine) Step(src, dst []float64) { e.eng.Step(src, dst) }

// NumVertices implements Stepper.
func (e *Engine) NumVertices() int { return e.eng.NumVertices() }

// IHTL returns the underlying iHTL graph (relabeling arrays, blocks,
// statistics).
func (e *Engine) IHTL() *IHTL { return e.ih }

// Graph returns the original graph the engine was built from.
func (e *Engine) Graph() *Graph { return e.g }

// Direction selects a baseline traversal kernel for NewBaselineEngine.
type Direction = spmv.Direction

// Baseline traversal directions (the paper's comparison points).
const (
	Pull            = spmv.Pull
	PushAtomic      = spmv.PushAtomic
	PushBuffered    = spmv.PushBuffered
	PushPartitioned = spmv.PushPartitioned
)

// NewBaselineEngine prepares a pull/push SpMV engine (the paper's
// baselines) over g, operating in original vertex-ID space.
func NewBaselineEngine(g *Graph, pool *Pool, dir Direction) (Stepper, error) {
	return spmv.NewEngine(g, pool, dir, spmv.Options{})
}

// PageRank runs PageRank over the iHTL engine and returns ranks in
// ORIGINAL vertex-ID space (the relabeling is applied internally).
func PageRank(e *Engine, pool *Pool, opt PageRankOptions) ([]float64, error) {
	n := e.NumVertices()
	deg := make([]int, n)
	for nv := 0; nv < n; nv++ {
		deg[nv] = e.g.OutDegree(e.ih.OldID[nv])
	}
	res, err := analytics.RunPageRank(e.eng, deg, pool, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	e.ih.PermuteToOld(res.Ranks, out)
	return out, nil
}

// PageRankBaseline runs PageRank over any Stepper that operates in
// original ID space (e.g. a NewBaselineEngine result).
func PageRankBaseline(g *Graph, s Stepper, pool *Pool, opt PageRankOptions) ([]float64, error) {
	if s.NumVertices() != g.NumV {
		return nil, fmt.Errorf("ihtl: engine/graph vertex count mismatch")
	}
	deg := make([]int, g.NumV)
	for v := range deg {
		deg[v] = g.OutDegree(VID(v))
	}
	res, err := analytics.RunPageRank(s, deg, pool, opt)
	if err != nil {
		return nil, err
	}
	return res.Ranks, nil
}
