// Package ihtl is the public API of this repository: a Go
// implementation of in-Hub Temporal Locality (iHTL) SpMV-based graph
// processing, after Koohi Esfahani, Kilpatrick & Vandierendonck,
// "Exploiting in-Hub Temporal Locality in SpMV-based Graph
// Processing", ICPP 2021.
//
// iHTL observes that pull-direction SpMV has poor temporal locality
// at in-hub vertices (their huge in-neighbour sets sweep the cache)
// and fixes it by traversing the in-edges of hubs in push direction
// through cache-resident per-thread buffers ("flipped blocks"), while
// the remaining edges stay in pull direction ("sparse block"). Every
// edge is traversed exactly once per iteration.
//
// Quick start:
//
//	pool := ihtl.NewPool(0)                        // one worker per core
//	defer pool.Close()
//	g, _ := ihtl.GenerateRMATOn(pool, 18, 16, 42)  // or ihtl.LoadGraph(path)
//	eng, _ := ihtl.NewEngine(g, pool, ihtl.Params{})
//	ranks, _ := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{})
//
// See the examples/ directory for runnable programs and DESIGN.md for
// the system inventory.
package ihtl

import (
	"context"
	"fmt"
	"io"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
)

// Graph is a directed graph in dual CSR/CSC form. See
// internal/graph.Graph for methods.
type Graph = graph.Graph

// Edge is a directed edge.
type Edge = graph.Edge

// VID is a vertex identifier.
type VID = graph.VID

// Pool is a reusable worker pool shared by all engines.
type Pool = sched.Pool

// Params controls iHTL construction: hubs per flipped block (or the
// cache size to derive it from), the flipped-block admission
// threshold, and limits. The zero value reproduces the paper's
// defaults (B = 1 MiB L2 / 8-byte vertex data, 50% threshold).
type Params = core.Params

// IHTL is a built iHTL graph: relabeling arrays, flipped blocks and
// the sparse block.
type IHTL = core.IHTL

// BuildBreakdown reports where preprocessing time went (rank, select,
// relabel, blocks; wall and per-worker busy), mirroring the engine's
// Step Breakdown. Obtain it via (*Engine).IHTL().BuildStats().
type BuildBreakdown = core.BuildBreakdown

// Stepper is the common interface of all SpMV engines: one Step
// computes dst[v] = Σ src[u] over in-neighbours u.
type Stepper = spmv.Stepper

// PageRankOptions configures PageRank.
type PageRankOptions = analytics.PageRankOptions

// EngineOptions tunes the iHTL engine beyond Params: pipeline
// ablations, the sparse-block kernel, and the opt-in numeric-health
// watchdog.
type EngineOptions = core.EngineOptions

// SparseKernel selects the engine's sparse-block kernel via
// EngineOptions.SparseKernel; see the constants below.
type SparseKernel = core.SparseKernel

// Sparse-block kernels: the repository default (auto), the paper's
// uniform pull, degree-aware-scheduled pull, and the two-phase
// propagation-blocked kernel. All three produce bit-for-bit identical
// results; they differ only in locality and scheduling.
const (
	SparseAuto       = core.SparseAuto
	SparsePull       = core.SparsePull
	SparsePullDegree = core.SparsePullDegree
	SparsePB         = core.SparsePB
)

// ParseSparseKernel parses a sparse-kernel name ("auto", "pull",
// "pull-degree", "pb") as used by the CLI -sparse flags.
func ParseSparseKernel(s string) (SparseKernel, error) { return core.ParseSparseKernel(s) }

// BlockEncoding selects how the engine stores and traverses block
// adjacency via EngineOptions.BlockEncoding; see the constants below.
type BlockEncoding = core.BlockEncoding

// Block encodings: auto (flat when the flat arrays are resident,
// varint for engines over graphs loaded encoded-only from a v2 engine
// file), the flat uint32 adjacency arrays, and the chunked varint-gap
// encoding decoded into per-worker scratch inside the fused dispatch.
// Both encodings produce bit-for-bit identical results under every
// pipeline; they differ only in resident footprint and stream width.
const (
	EncodingAuto   = core.EncodingAuto
	EncodingFlat   = core.EncodingFlat
	EncodingVarint = core.EncodingVarint
)

// ParseBlockEncoding parses a block-encoding name ("auto", "flat",
// "varint") as used by the CLI -encoding flags.
func ParseBlockEncoding(s string) (BlockEncoding, error) { return core.ParseBlockEncoding(s) }

// EngineFile is a serialised iHTL graph opened by OpenEngineFile —
// memory-mapped when the file is in the v2 segment format and the
// platform allows it, resident otherwise. Close releases the mapping;
// the IHTL (and engines over it) must not be used afterwards.
type EngineFile = core.EngineFile

// OpenEngineFile opens a serialised iHTL graph (either on-disk
// version). v2 files map lazily: the topology pages in on demand and
// engines resolve BlockEncoding auto to varint, so a billion-edge
// graph opens without materialising flat adjacency.
func OpenEngineFile(path string) (*EngineFile, error) { return core.OpenEngineFile(path) }

// HealthPolicy configures the opt-in numeric watchdog: the SpMV
// result vector is scanned for NaN/±Inf after each (Every-th) Step,
// fused into the engine's epilogue sweep.
type HealthPolicy = spmv.HealthPolicy

// HealthMode selects what the watchdog does on a non-finite value.
type HealthMode = spmv.HealthMode

// Watchdog modes: off, surface a *NumericError, clamp the offending
// values to zero and continue, or report an error asking the driver
// to roll back to its last checkpoint.
const (
	HealthOff      = spmv.HealthOff
	HealthError    = spmv.HealthError
	HealthClamp    = spmv.HealthClamp
	HealthRollback = spmv.HealthRollback
)

// NumericError reports non-finite values found by the watchdog.
type NumericError = spmv.NumericError

// PanicError wraps a panic captured in a pool worker: the panic
// value, the worker index, and the stack at capture time. Engines'
// Ctx entrypoints return it instead of crashing the process.
type PanicError = sched.PanicError

// ErrPoolClosed is returned by Ctx entrypoints dispatched on a
// closed Pool.
var ErrPoolClosed = sched.ErrPoolClosed

// Checkpoint is a resumable snapshot of an iterative driver; see
// PageRankOptions.CheckpointEvery/Resume and Encode/DecodeCheckpoint.
type Checkpoint = analytics.Checkpoint

// EncodeCheckpoint writes a checkpoint in the versioned binary
// format; DecodeCheckpoint reads it back.
func EncodeCheckpoint(w io.Writer, c *Checkpoint) error { return analytics.EncodeCheckpoint(w, c) }

// DecodeCheckpoint reads a checkpoint written by EncodeCheckpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) { return analytics.DecodeCheckpoint(r) }

// NewPool creates a worker pool; workers <= 0 selects GOMAXPROCS.
// Close it when done.
func NewPool(workers int) *Pool { return sched.NewPool(workers) }

// BuildGraph constructs a graph from an edge list over [0, numV),
// deduplicating edges and removing zero-degree vertices as the paper
// does for its datasets. It builds sequentially; use BuildGraphOn to
// build across a pool's workers.
func BuildGraph(numV int, edges []Edge) (*Graph, error) {
	return BuildGraphOn(nil, numV, edges)
}

// BuildGraphOn is BuildGraph parallelised on pool: the CSR/CSC
// counting sorts, adjacency sorting, dedup and zero-degree compaction
// all run across the pool's workers and produce a graph bit-for-bit
// identical to the sequential build. A nil pool builds sequentially.
func BuildGraphOn(pool *Pool, numV int, edges []Edge) (*Graph, error) {
	return BuildGraphCtx(nil, pool, numV, edges)
}

// BuildGraphCtx is BuildGraphOn under a context: cancelling ctx stops
// the multi-pass build between phases (and mid-pass at the next chunk
// claim on a pool) and returns ctx.Err(); a panic in a pool worker
// comes back as a *PanicError. ctx may be nil.
func BuildGraphCtx(ctx context.Context, pool *Pool, numV int, edges []Edge) (*Graph, error) {
	opt := graph.DefaultBuildOptions()
	opt.Pool = pool
	return graph.BuildCtx(ctx, numV, edges, opt)
}

// LoadGraph reads a graph from the binary format written by
// (*Graph).SaveFile.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// GenerateRMAT generates a social-network-like R-MAT graph with
// 2^scale vertices and ~2^scale*edgeFactor edges (Graph500
// parameters).
func GenerateRMAT(scale, edgeFactor int, seed uint64) (*Graph, error) {
	return GenerateRMATOn(nil, scale, edgeFactor, seed)
}

// GenerateRMATOn is GenerateRMAT with the graph build parallelised on
// pool. The edge stream is deterministic and the parallel build is
// bit-for-bit identical to the sequential one, so the resulting graph
// does not depend on the pool or its worker count.
func GenerateRMATOn(pool *Pool, scale, edgeFactor int, seed uint64) (*Graph, error) {
	cfg := gen.DefaultRMAT(scale, edgeFactor, seed)
	cfg.Pool = pool
	return gen.RMAT(cfg)
}

// GenerateWeb generates a web-like graph with n pages: extreme
// asymmetric in-hubs and host-block community structure.
func GenerateWeb(n int, seed uint64) (*Graph, error) {
	return GenerateWebOn(nil, n, seed)
}

// GenerateWebOn is GenerateWeb with the graph build parallelised on
// pool; like GenerateRMATOn the result is independent of the pool.
func GenerateWebOn(pool *Pool, n int, seed uint64) (*Graph, error) {
	cfg := gen.DefaultWeb(n, seed)
	cfg.Pool = pool
	return gen.Web(cfg)
}

// ShardedIHTL is a built sharded iHTL graph: the shard plan, one
// private iHTL graph per shard, and the cross-shard exchange topology.
// Engines built with EngineOptions.Shards > 1 expose it through
// (*Engine).Sharded().
type ShardedIHTL = core.ShardedIHTL

// coreStepper is the stepping surface shared by the single-graph and
// sharded core engines; the public Engine delegates through it.
type coreStepper interface {
	Step(src, dst []float64)
	StepCtx(ctx context.Context, src, dst []float64) error
	StepBatch(src, dst []float64, k int)
	StepBatchCtx(ctx context.Context, src, dst []float64, k int) error
	NumVertices() int
}

// Engine is an iHTL SpMV engine over a fixed graph. It implements
// Stepper in iHTL (relabeled) vertex-ID space and exposes the
// relabeling through IHTL() — or, for a sharded engine
// (EngineOptions.Shards > 1), through Sharded().
type Engine struct {
	ih  *core.IHTL        // nil when sharded
	sg  *core.ShardedIHTL // nil when single-graph
	eng coreStepper
	g   *graph.Graph
}

// NewEngine builds the iHTL graph of g with the given parameters and
// prepares an Algorithm 3 engine on the pool. Preprocessing (hub
// ranking, relabeling, block construction) runs across the same pool
// the engine later steps on; the per-phase times are available via
// IHTL().BuildStats().
func NewEngine(g *Graph, pool *Pool, p Params) (*Engine, error) {
	return NewEngineOpts(nil, g, pool, p, EngineOptions{})
}

// NewEngineOpts is NewEngine with explicit engine options (pipeline
// ablations, the numeric-health watchdog, sharded execution) and a
// context governing the preprocessing build: cancelling ctx aborts hub
// ranking, relabeling and block construction between phases (mid-pass
// at the next chunk claim) and returns ctx.Err(). ctx may be nil.
//
// With opt.Shards > 1 the graph is cut into that many vertex-range
// shards, each with its own flipped blocks, sparse block and hub
// buffers, stepped by shard-affine worker groups with a deterministic
// cross-shard exchange — bit-for-bit schedule-independent like the
// unsharded engine. See DESIGN.md §15.
func NewEngineOpts(ctx context.Context, g *Graph, pool *Pool, p Params, opt EngineOptions) (*Engine, error) {
	if opt.Shards > 1 {
		sg, err := core.BuildShardedCtx(ctx, g, p, pool, opt.Shards)
		if err != nil {
			return nil, err
		}
		seng, err := core.NewShardedEngineOpts(sg, pool, opt)
		if err != nil {
			return nil, err
		}
		return &Engine{sg: sg, eng: seng, g: g}, nil
	}
	ih, err := core.BuildWithCtx(ctx, g, p, pool)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngineOpts(ih, pool, opt)
	if err != nil {
		return nil, err
	}
	return &Engine{ih: ih, eng: eng, g: g}, nil
}

// Step implements Stepper (in iHTL ID space).
func (e *Engine) Step(src, dst []float64) { e.eng.Step(src, dst) }

// StepCtx is Step under a context: cancelling ctx stops the fused
// dispatch at the next chunk claim and returns ctx.Err(); a panic in
// a pool worker returns a *PanicError and a numeric-health violation
// a *NumericError, instead of panicking. After a failed StepCtx the
// engine's internal state is reset, so the next clean Step produces
// bit-for-bit the same result it would have without the failure.
func (e *Engine) StepCtx(ctx context.Context, src, dst []float64) error {
	return e.eng.StepCtx(ctx, src, dst)
}

// NumVertices implements Stepper.
func (e *Engine) NumVertices() int { return e.eng.NumVertices() }

// IHTL returns the underlying iHTL graph (relabeling arrays, blocks,
// statistics), or nil for a sharded engine — use Sharded() there.
func (e *Engine) IHTL() *IHTL { return e.ih }

// Sharded returns the underlying sharded iHTL graph of an engine built
// with EngineOptions.Shards > 1, or nil for a single-graph engine.
func (e *Engine) Sharded() *ShardedIHTL { return e.sg }

// Graph returns the original graph the engine was built from.
func (e *Engine) Graph() *Graph { return e.g }

// oldID maps an iHTL (or sharded-global) ID back to the original ID.
func (e *Engine) oldID(nv int) VID {
	if e.sg != nil {
		return e.sg.OldID[nv]
	}
	return e.ih.OldID[nv]
}

// newID maps an original ID to the engine's stepping ID space.
func (e *Engine) newID(v VID) VID {
	if e.sg != nil {
		return e.sg.NewID[v]
	}
	return e.ih.NewID[v]
}

// permuteToOld scatters a stepping-ID-space vector into original ID
// order.
func (e *Engine) permuteToOld(in, out []float64) {
	if e.sg != nil {
		e.sg.PermuteToOld(in, out)
		return
	}
	e.ih.PermuteToOld(in, out)
}

// Direction selects a baseline traversal kernel for NewBaselineEngine.
type Direction = spmv.Direction

// Baseline traversal directions (the paper's comparison points).
const (
	Pull            = spmv.Pull
	PushAtomic      = spmv.PushAtomic
	PushBuffered    = spmv.PushBuffered
	PushPartitioned = spmv.PushPartitioned
	PropBlocked     = spmv.PropBlocked
)

// NewBaselineEngine prepares a pull/push SpMV engine (the paper's
// baselines) over g, operating in original vertex-ID space.
func NewBaselineEngine(g *Graph, pool *Pool, dir Direction) (Stepper, error) {
	return spmv.NewEngine(g, pool, dir, spmv.Options{})
}

// PageRank runs PageRank over the iHTL engine and returns ranks in
// ORIGINAL vertex-ID space (the relabeling is applied internally).
func PageRank(e *Engine, pool *Pool, opt PageRankOptions) ([]float64, error) {
	return PageRankCtx(nil, e, pool, opt)
}

// PageRankCtx is PageRank under a context: cancelling ctx stops the
// run mid-Step at the next chunk claim and returns ctx.Err(), and
// engine failures (worker panics, numeric-health violations) surface
// as errors instead of panics. Checkpoints taken through
// opt.CheckpointEvery/OnCheckpoint — and consumed through opt.Resume
// — are in iHTL (relabeled) ID space and belong to this engine's
// graph; resuming restores the exact trajectory bit-for-bit. ctx may
// be nil.
func PageRankCtx(ctx context.Context, e *Engine, pool *Pool, opt PageRankOptions) ([]float64, error) {
	n := e.NumVertices()
	deg := make([]int, n)
	for nv := 0; nv < n; nv++ {
		deg[nv] = e.g.OutDegree(e.oldID(nv))
	}
	res, err := analytics.RunPageRankCtx(ctx, e.eng, deg, pool, opt)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	e.permuteToOld(res.Ranks, out)
	return out, nil
}

// PageRankBaseline runs PageRank over any Stepper that operates in
// original ID space (e.g. a NewBaselineEngine result).
func PageRankBaseline(g *Graph, s Stepper, pool *Pool, opt PageRankOptions) ([]float64, error) {
	if s.NumVertices() != g.NumV {
		return nil, fmt.Errorf("ihtl: engine/graph vertex count mismatch")
	}
	deg := make([]int, g.NumV)
	for v := range deg {
		deg[v] = g.OutDegree(VID(v))
	}
	res, err := analytics.RunPageRank(s, deg, pool, opt)
	if err != nil {
		return nil, err
	}
	return res.Ranks, nil
}
