package ihtl_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline is the end-to-end integration test of the command-
// line tools: generate a graph, convert it through every format, run
// the reports and analytics, and exercise the benchmark harness on a
// dataset subset — the full workflow a downstream user follows.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline builds six binaries")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, name := range []string{"graphgen", "graphinfo", "pagerank", "analytics", "ihtlconvert", "ihtlbench"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	graphPath := filepath.Join(dir, "g.bin")
	out := run("graphgen", "-kind", "web", "-n", "5000", "-seed", "3", "-o", graphPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("graphgen output: %s", out)
	}

	// Convert: flat -> compressed -> edgelist -> flat again; sizes
	// and loads must stay consistent.
	compPath := filepath.Join(dir, "g.cbin")
	run("ihtlconvert", "-i", graphPath, "-to", "compressed", "-o", compPath)
	elPath := filepath.Join(dir, "g.txt")
	run("ihtlconvert", "-i", compPath, "-to", "edgelist", "-o", elPath)
	backPath := filepath.Join(dir, "g2.bin")
	run("ihtlconvert", "-i", elPath, "-from", "edgelist", "-o", backPath)
	ihtlPath := filepath.Join(dir, "g.ihtl")
	out = run("ihtlconvert", "-i", graphPath, "-to", "ihtl", "-o", ihtlPath, "-hubs-per-block", "256")
	if !strings.Contains(out, "built iHTL graph") {
		t.Fatalf("ihtlconvert output: %s", out)
	}
	// Upgrade the v1 engine file to the mmap-friendly v2 layout; the
	// varint sections must come out smaller than the flat v1 adjacency.
	ihtl2Path := filepath.Join(dir, "g.ihtl2")
	out = run("ihtlconvert", "-i", ihtlPath, "-from", "ihtl", "-to", "ihtlv2", "-o", ihtl2Path)
	if !strings.Contains(out, "iHTL graph") {
		t.Fatalf("ihtlconvert -from ihtl output: %s", out)
	}
	v1Info, err := os.Stat(ihtlPath)
	if err != nil {
		t.Fatal(err)
	}
	v2Info, err := os.Stat(ihtl2Path)
	if err != nil {
		t.Fatal(err)
	}
	if v2Info.Size() >= v1Info.Size() {
		t.Fatalf("v2 engine file %d B >= v1 %d B", v2Info.Size(), v1Info.Size())
	}

	flatInfo, err := os.Stat(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	compInfo, err := os.Stat(compPath)
	if err != nil {
		t.Fatal(err)
	}
	if compInfo.Size() >= flatInfo.Size() {
		t.Fatalf("compressed %d >= flat %d", compInfo.Size(), flatInfo.Size())
	}

	// Reports.
	out = run("graphinfo", "-i", graphPath, "-hubs-per-block", "256", "-reuse")
	for _, want := range []string{"in-degree:", "asymmetricity", "iHTL structure", "reuse-distance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("graphinfo missing %q:\n%s", want, out)
		}
	}

	// PageRank through two engines must rank the same top vertex.
	pr1 := run("pagerank", "-i", graphPath, "-engine", "ihtl", "-iters", "10", "-top", "1", "-hubs-per-block", "256")
	pr2 := run("pagerank", "-i", compPath, "-engine", "pull", "-iters", "10", "-top", "1")
	top := func(s string) string {
		i := strings.Index(s, "#1 vertex")
		if i < 0 {
			t.Fatalf("no top vertex in %q", s)
		}
		return strings.Fields(s[i:])[2]
	}
	if top(pr1) != top(pr2) {
		t.Fatalf("engines disagree on top vertex: %q vs %q", top(pr1), top(pr2))
	}

	// Analytics.
	for _, algo := range []string{"bfs", "cc", "triangles", "kcore"} {
		out = run("analytics", "-i", graphPath, "-algo", algo)
		if !strings.Contains(out, "ms") {
			t.Fatalf("analytics %s output: %s", algo, out)
		}
	}

	// Harness smoke: one experiment, one small dataset, CSV mode.
	out = run("ihtlbench", "-small", "-exp", "table4", "-datasets", "lvjrnl-s", "-csv")
	if !strings.Contains(out, "Dataset,CSC (MiB)") {
		t.Fatalf("ihtlbench CSV output: %s", out)
	}
}
