package ihtl_test

import (
	"math"
	"testing"

	"ihtl"
)

func TestPublicAPIBatchFlow(t *testing.T) {
	g, err := ihtl.GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(4)
	defer pool.Close()

	const k = 4
	eng, err := ihtl.NewBatchEngine(g, pool, ihtl.Params{HubsPerBlock: 256}, k)
	if err != nil {
		t.Fatal(err)
	}
	ih := eng.IHTL()

	// Pack K copies of the same dense vector; every lane of the batched
	// step must then equal one scalar Step.
	dense := make([]float64, g.NumV)
	for v := range dense {
		dense[v] = float64(v % 7)
	}
	src := ihtl.NewBatch(g.NumV, k)
	srcNew := ihtl.NewBatch(g.NumV, k)
	for j := 0; j < k; j++ {
		src.SetLane(j, dense)
	}
	src.PermuteToNew(ih, srcNew)

	dst := ihtl.NewBatch(g.NumV, k)
	eng.StepBatch(srcNew, dst)
	dstOld := ihtl.NewBatch(g.NumV, k)
	dst.PermuteToOld(ih, dstOld)

	denseNew := make([]float64, g.NumV)
	want := make([]float64, g.NumV)
	wantOld := make([]float64, g.NumV)
	ih.PermuteToNew(dense, denseNew)
	eng.Step(denseNew, want)
	ih.PermuteToOld(want, wantOld)

	lane := make([]float64, g.NumV)
	for j := 0; j < k; j++ {
		dstOld.Lane(j, lane)
		for v := range lane {
			if math.Float64bits(lane[v]) != math.Float64bits(wantOld[v]) {
				t.Fatalf("lane %d vertex %d: batched %v != scalar %v", j, v, lane[v], wantOld[v])
			}
		}
	}

	// Accessors.
	src.Set(3, 1, 42)
	if src.At(3, 1) != 42 {
		t.Fatal("Batch Set/At broken")
	}
}

func TestPublicAPIPersonalizedPageRank(t *testing.T) {
	g, err := ihtl.GenerateRMAT(10, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(4)
	defer pool.Close()

	sources := []ihtl.VID{1, 17, 300}
	eng, err := ihtl.NewBatchEngine(g, pool, ihtl.Params{HubsPerBlock: 256}, len(sources))
	if err != nil {
		t.Fatal(err)
	}
	opt := ihtl.PageRankOptions{MaxIters: 15, Tol: -1, RedistributeDangling: true}
	ranks, err := ihtl.PersonalizedPageRank(eng, pool, sources, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != len(sources) {
		t.Fatalf("got %d rank vectors, want %d", len(ranks), len(sources))
	}
	for j, s := range sources {
		mass := 0.0
		for v, r := range ranks[j] {
			if r < 0 {
				t.Fatalf("lane %d: negative rank at %d", j, v)
			}
			mass += r
		}
		if mass > 1+1e-9 || mass <= 0 {
			t.Fatalf("lane %d: rank mass %g outside (0, 1]", j, mass)
		}
		if ranks[j][s] == 0 {
			t.Fatalf("lane %d: source %d has zero rank", j, s)
		}
	}

	if _, err := ihtl.PersonalizedPageRank(eng, pool, []ihtl.VID{ihtl.VID(g.NumV)}, opt); err == nil {
		t.Fatal("out-of-range source: want error")
	}
}
