package ihtl_test

import (
	"fmt"

	"ihtl"
)

// ExampleNewEngine demonstrates the core workflow on the paper's
// worked example graph (Figure 2a): build the iHTL structure and
// inspect how it classified the vertices.
func ExampleNewEngine() {
	// The paper's 8-vertex example: in-hubs #3 and #7 (0-indexed 2
	// and 6) receive most edges.
	edges := []ihtl.Edge{
		{Src: 0, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 6},
		{Src: 2, Dst: 6},
		{Src: 3, Dst: 4},
		{Src: 4, Dst: 2}, {Src: 4, Dst: 6},
		{Src: 5, Dst: 2}, {Src: 5, Dst: 6}, {Src: 5, Dst: 4}, {Src: 5, Dst: 7},
		{Src: 6, Dst: 2}, {Src: 6, Dst: 0},
		{Src: 7, Dst: 2},
	}
	g, err := ihtl.BuildGraph(8, edges)
	if err != nil {
		panic(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()

	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 2})
	if err != nil {
		panic(err)
	}
	ih := eng.IHTL()
	fmt.Printf("hubs=%d VWEH=%d FV=%d blocks=%d\n",
		ih.NumHubs, ih.NumVWEH, ih.NumFV, len(ih.Blocks))
	fmt.Printf("flipped edges=%d sparse edges=%d\n",
		ih.FlippedEdges(), ih.Sparse.NumEdges())
	// Output:
	// hubs=2 VWEH=4 FV=2 blocks=1
	// flipped edges=9 sparse edges=5
}

// ExamplePageRank runs PageRank over the iHTL engine on a small ring
// where every vertex must end with the same rank.
func ExamplePageRank() {
	g, err := ihtl.BuildGraph(4, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	if err != nil {
		panic(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 2})
	if err != nil {
		panic(err)
	}
	ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 50})
	if err != nil {
		panic(err)
	}
	fmt.Printf("uniform=%v\n", ranks[0] == ranks[1] && ranks[1] == ranks[2] && ranks[2] == ranks[3])
	// Output:
	// uniform=true
}

// ExampleShortestPaths computes weighted shortest paths through the
// iHTL engine's min-plus semiring form.
func ExampleShortestPaths() {
	g, err := ihtl.BuildGraph(4, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	if err != nil {
		panic(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	weight := func(u, v ihtl.VID) int64 {
		if u == 0 && v == 2 {
			return 10 // the long way round
		}
		return 1
	}
	dist, err := ihtl.ShortestPaths(g, pool, ihtl.Params{HubsPerBlock: 2}, 0, weight)
	if err != nil {
		panic(err)
	}
	fmt.Println(dist)
	// Output:
	// [0 1 10 2]
}
