package ihtl_test

import (
	"testing"

	"ihtl"
)

func TestShortestPathsAPI(t *testing.T) {
	// Weighted diamond: 0->1 (w1), 0->2 (w10), 1->3 (w1), 2->3 (w1).
	g, err := ihtl.BuildGraph(4, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	weight := func(u, v ihtl.VID) int64 {
		if u == 0 && v == 2 {
			return 10
		}
		return 1
	}
	dist, err := ihtl.ShortestPaths(g, pool, ihtl.Params{HubsPerBlock: 2}, 0, weight)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 10, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if _, err := ihtl.ShortestPaths(g, pool, ihtl.Params{}, 99, weight); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestHopAndReachabilityAPI(t *testing.T) {
	g, err := ihtl.BuildGraph(5, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	hops, err := ihtl.HopDistances(g, pool, ihtl.Params{HubsPerBlock: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hops[0] != 0 || hops[1] != 1 || hops[2] != 2 || hops[3] != ihtl.InfDist {
		t.Fatalf("hops = %v", hops)
	}
	reach, err := ihtl.Reachability(g, pool, ihtl.Params{HubsPerBlock: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0] || !reach[1] || !reach[2] || reach[3] || reach[4] {
		t.Fatalf("reach = %v", reach)
	}
}

func TestComponentsAPI(t *testing.T) {
	g, err := ihtl.BuildGraph(6, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	cc, err := ihtl.Components(g, pool, ihtl.Params{HubsPerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if cc[v] != 0 {
			t.Fatalf("cc = %v", cc)
		}
	}
	for v := 3; v < 6; v++ {
		if cc[v] != 3 {
			t.Fatalf("cc = %v", cc)
		}
	}
}

func TestShortestPathsOnPowerLawGraph(t *testing.T) {
	g, err := ihtl.GenerateRMAT(9, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(2)
	defer pool.Close()
	unit := func(u, v ihtl.VID) int64 { return 1 }
	dist, err := ihtl.ShortestPaths(g, pool, ihtl.Params{HubsPerBlock: 32}, 0, unit)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := ihtl.HopDistances(g, pool, ihtl.Params{HubsPerBlock: 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unit-weight shortest paths ARE hop distances.
	for v := range dist {
		if dist[v] != hops[v] {
			t.Fatalf("unit-weight dist[%d]=%d != hops %d", v, dist[v], hops[v])
		}
	}
}
