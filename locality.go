package ihtl

import (
	"fmt"

	"ihtl/internal/cache"
	"ihtl/internal/core"
	"ihtl/internal/graph"
	"ihtl/internal/order"
	"ihtl/internal/spmv"
	"ihtl/internal/stats"
)

// CacheConfig describes a simulated cache hierarchy for the locality
// experiments (the portable stand-in for hardware counters; see
// internal/cache).
type CacheConfig = cache.Config

// DegreeMissBucket is one point of a miss-rate-by-degree curve
// (paper Figure 1).
type DegreeMissBucket = spmv.DegreeMissBucket

// CacheStats aggregates one simulated SpMV iteration.
type CacheStats = spmv.SimStats

// XeonCacheConfig returns the paper's evaluation-machine geometry
// (32 KB L1 / 1 MB L2 / 22 MB L3).
func XeonCacheConfig() CacheConfig { return cache.XeonGold6130() }

// ScaledCacheConfig returns the Xeon geometry divided by factor, for
// experiments on graphs smaller than the paper's.
func ScaledCacheConfig(factor int) CacheConfig { return cache.Scaled(factor) }

// SimulatePullLocality replays one pull-direction SpMV iteration of g
// against the simulated hierarchy and returns aggregate stats plus the
// per-in-degree miss-rate buckets of Figure 1.
func SimulatePullLocality(g *Graph, cfg CacheConfig) (CacheStats, []DegreeMissBucket) {
	return spmv.SimulatePull(g, cfg, true)
}

// SimulateIHTLLocality builds the iHTL graph (with B derived from the
// simulated L2) and replays one Algorithm 3 iteration.
func SimulateIHTLLocality(g *Graph, cfg CacheConfig) (CacheStats, []DegreeMissBucket, error) {
	ih, err := core.Build(g, Params{CacheBytes: cfg.Levels[1].SizeBytes})
	if err != nil {
		return CacheStats{}, nil, err
	}
	st, buckets := core.SimulateStep(ih, g, cfg, true)
	return st, buckets, nil
}

// ReorderAlgorithm names a baseline relabeling algorithm.
type ReorderAlgorithm string

// Baseline relabeling algorithms (paper §4.5).
const (
	ReorderDegree    ReorderAlgorithm = "degree"
	ReorderSlashBurn ReorderAlgorithm = "slashburn"
	ReorderGOrder    ReorderAlgorithm = "gorder"
	ReorderRabbit    ReorderAlgorithm = "rabbit"
	ReorderHubSort   ReorderAlgorithm = "hubsort"
	ReorderVEBO      ReorderAlgorithm = "vebo"
)

// Reorder relabels g with the named algorithm and returns the
// relabeled graph together with the permutation (newID per original
// vertex).
func Reorder(g *Graph, alg ReorderAlgorithm) (*Graph, []VID, error) {
	var a order.Algorithm
	switch alg {
	case ReorderDegree:
		a = order.DegreeSort{}
	case ReorderSlashBurn:
		a = order.SlashBurn{}
	case ReorderGOrder:
		a = order.GOrder{}
	case ReorderRabbit:
		a = order.RabbitOrder{}
	case ReorderHubSort:
		a = order.HubSort{}
	case ReorderVEBO:
		a = order.VEBO{}
	default:
		return nil, nil, fmt.Errorf("ihtl: unknown reorder algorithm %q", alg)
	}
	perm := a.Permutation(g)
	ng, err := graph.Relabel(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return ng, perm, nil
}

// RabbitSparseOrder returns a Rabbit-Order instance usable as
// Params.SparseOrder — the paper's §6 suggestion of improving sparse-
// block locality with community-based reordering of the non-hub
// classes.
func RabbitSparseOrder() core.SparseOrderer { return order.RabbitOrder{} }

// HubAsymmetricity returns the mean Figure 9 asymmetricity of the
// top-k in-degree vertices: ≈0 for social networks (reciprocal hubs),
// ≈1 for web graphs.
func HubAsymmetricity(g *Graph, k int) float64 {
	return stats.HubAsymmetricity(g, k)
}

// DegreeSummary summarises a graph's in-degree distribution.
type DegreeSummary = stats.DegreeSummary

// SummarizeInDegrees computes the in-degree summary of g.
func SummarizeInDegrees(g *Graph) DegreeSummary {
	return stats.Summarize(g, stats.InDegree)
}
