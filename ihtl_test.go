package ihtl_test

import (
	"math"
	"path/filepath"
	"testing"

	"ihtl"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g, err := ihtl.GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(4)
	defer pool.Close()

	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != g.NumV {
		t.Fatalf("ranks length %d, want %d", len(ranks), g.NumV)
	}

	// The baseline pull engine must agree exactly.
	pull, err := ihtl.NewBaselineEngine(g, pool, ihtl.Pull)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ihtl.PageRankBaseline(g, pull, pool, ihtl.PageRankOptions{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ranks {
		if math.Abs(ranks[v]-ref[v]) > 1e-12 {
			t.Fatalf("iHTL and pull PageRank disagree at %d: %g vs %g", v, ranks[v], ref[v])
		}
	}

	// Engine introspection.
	ih := eng.IHTL()
	if ih.NumHubs <= 0 || len(ih.Blocks) == 0 {
		t.Fatal("RMAT graph should produce hubs and flipped blocks")
	}
	if eng.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
}

func TestPublicAPIBuildAndSave(t *testing.T) {
	g, err := ihtl.BuildGraph(4, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ihtl.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumV != g.NumV || g2.NumE != g.NumE {
		t.Fatal("load changed graph")
	}
}

func TestPublicAPIWebGenerator(t *testing.T) {
	g, err := ihtl.GenerateWeb(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxIn, _ := g.MaxInDegree()
	maxOut, _ := g.MaxOutDegree()
	if maxIn <= maxOut {
		t.Fatalf("web graph should have asymmetric hubs: in=%d out=%d", maxIn, maxOut)
	}
}
