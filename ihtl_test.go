package ihtl_test

import (
	"math"
	"path/filepath"
	"testing"

	"ihtl"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g, err := ihtl.GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(4)
	defer pool.Close()

	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != g.NumV {
		t.Fatalf("ranks length %d, want %d", len(ranks), g.NumV)
	}

	// The baseline pull engine must agree exactly.
	pull, err := ihtl.NewBaselineEngine(g, pool, ihtl.Pull)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ihtl.PageRankBaseline(g, pull, pool, ihtl.PageRankOptions{MaxIters: 10, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ranks {
		if math.Abs(ranks[v]-ref[v]) > 1e-12 {
			t.Fatalf("iHTL and pull PageRank disagree at %d: %g vs %g", v, ranks[v], ref[v])
		}
	}

	// Engine introspection.
	ih := eng.IHTL()
	if ih.NumHubs <= 0 || len(ih.Blocks) == 0 {
		t.Fatal("RMAT graph should produce hubs and flipped blocks")
	}
	if eng.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
}

func TestPublicAPIBuildAndSave(t *testing.T) {
	g, err := ihtl.BuildGraph(4, []ihtl.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ihtl.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumV != g.NumV || g2.NumE != g.NumE {
		t.Fatal("load changed graph")
	}
}

func TestPublicAPIWebGenerator(t *testing.T) {
	g, err := ihtl.GenerateWeb(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxIn, _ := g.MaxInDegree()
	maxOut, _ := g.MaxOutDegree()
	if maxIn <= maxOut {
		t.Fatalf("web graph should have asymmetric hubs: in=%d out=%d", maxIn, maxOut)
	}
}

// TestPublicAPIParallelBuildParity checks that the *On variants
// (pool-parallelised generation and graph build) produce graphs
// identical to their sequential counterparts, and that an engine
// built on the pool matches a sequentially built one.
func TestPublicAPIParallelBuildParity(t *testing.T) {
	pool := ihtl.NewPool(4)
	defer pool.Close()

	seq, err := ihtl.GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ihtl.GenerateRMATOn(pool, 10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, "rmat", seq, par)

	wseq, err := ihtl.GenerateWeb(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	wpar, err := ihtl.GenerateWebOn(pool, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, "web", wseq, wpar)

	edges := seq.Edges(nil)
	gseq, err := ihtl.BuildGraph(seq.NumV, edges)
	if err != nil {
		t.Fatal(err)
	}
	gpar, err := ihtl.BuildGraphOn(pool, seq.NumV, edges)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, "rebuild", gseq, gpar)

	one := ihtl.NewPool(1) // one worker: NewEngine takes the sequential build path
	defer one.Close()
	eseq, err := ihtl.NewEngine(seq, one, ihtl.Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	epar, err := ihtl.NewEngine(par, pool, ihtl.Params{HubsPerBlock: 64})
	if err != nil {
		t.Fatal(err)
	}
	is, ip := eseq.IHTL(), epar.IHTL()
	if is.NumHubs != ip.NumHubs || is.NumVWEH != ip.NumVWEH || is.NumFV != ip.NumFV {
		t.Fatalf("engine classes differ: seq %d/%d/%d par %d/%d/%d",
			is.NumHubs, is.NumVWEH, is.NumFV, ip.NumHubs, ip.NumVWEH, ip.NumFV)
	}
	for v := range is.NewID {
		if is.NewID[v] != ip.NewID[v] {
			t.Fatalf("NewID[%d] = %d (par), want %d (seq)", v, ip.NewID[v], is.NewID[v])
		}
	}
	if bs := ip.BuildStats(); bs.Wall <= 0 {
		t.Fatalf("BuildStats.Wall = %v, want > 0", bs.Wall)
	}
}

// TestPublicAPIBlockEncoding drives the compressed-topology surface
// end to end through the public aliases: parse the flag value, run a
// varint engine against the flat default, and reopen the graph from a
// v2 engine file where auto resolves to varint.
func TestPublicAPIBlockEncoding(t *testing.T) {
	enc, err := ihtl.ParseBlockEncoding("varint")
	if err != nil || enc != ihtl.EncodingVarint {
		t.Fatalf("ParseBlockEncoding = %v, %v", enc, err)
	}
	if _, err := ihtl.ParseBlockEncoding("huffman"); err == nil {
		t.Fatal("ParseBlockEncoding accepted an unknown encoding")
	}

	g, err := ihtl.GenerateRMAT(9, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(3)
	defer pool.Close()

	p := ihtl.Params{HubsPerBlock: 64}
	flat, err := ihtl.NewEngine(g, pool, p)
	if err != nil {
		t.Fatal(err)
	}
	varint, err := ihtl.NewEngineOpts(nil, g, pool, p, ihtl.EngineOptions{BlockEncoding: enc})
	if err != nil {
		t.Fatal(err)
	}
	// Integer-valued input: addition is exact, so the two encodings
	// must agree bit for bit regardless of merge scheduling.
	n := flat.NumVertices()
	src := make([]float64, n)
	for v := range src {
		src[v] = float64(v%17 - 8)
	}
	want := make([]float64, n)
	got := make([]float64, n)
	flat.Step(src, want)
	varint.Step(src, got)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("varint Step differs at %d: %g vs %g", v, got[v], want[v])
		}
	}

	path := filepath.Join(t.TempDir(), "g.ihtl2")
	if err := flat.IHTL().SaveFileV2(path); err != nil {
		t.Fatal(err)
	}
	ef, err := ihtl.OpenEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	if !ef.IHTL().EncodedOnly() {
		t.Fatal("v2 engine file should open encoded-only")
	}
}

// TestPublicAPISharded drives EngineOptions.Shards end to end: a
// sharded engine must expose Sharded() instead of IHTL(), step
// bit-for-bit like the unsharded engine on integer inputs (compared in
// original ID space), and produce the same PageRank and personalized
// PageRank trajectories.
func TestPublicAPISharded(t *testing.T) {
	g, err := ihtl.GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	pool := ihtl.NewPool(4)
	defer pool.Close()

	p := ihtl.Params{HubsPerBlock: 64}
	base, err := ihtl.NewEngine(g, pool, p)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := ihtl.NewEngineOpts(nil, g, pool, p, ihtl.EngineOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if shd.IHTL() != nil {
		t.Fatal("sharded engine surfaced a single-graph IHTL")
	}
	sg := shd.Sharded()
	if sg == nil || sg.NumShards() != 3 {
		t.Fatalf("Sharded() = %v, want a 3-shard plan", sg)
	}
	if base.Sharded() != nil {
		t.Fatal("single-graph engine surfaced a shard plan")
	}
	if sg.CrossEdges() == 0 {
		t.Fatal("RMAT fixture should have cross-shard edges")
	}

	// Integer-valued step differential in original ID space: exact
	// addition, so sharded and unsharded must agree bit for bit.
	n := base.NumVertices()
	src := make([]float64, n)
	for v := range src {
		src[v] = float64(v%17 - 8)
	}
	stepOld := func(e *ihtl.Engine) []float64 {
		in := make([]float64, n)
		out := make([]float64, n)
		old := make([]float64, n)
		if ih := e.IHTL(); ih != nil {
			ih.PermuteToNew(src, in)
			e.Step(in, out)
			ih.PermuteToOld(out, old)
		} else {
			e.Sharded().PermuteToNew(src, in)
			e.Step(in, out)
			e.Sharded().PermuteToOld(out, old)
		}
		return old
	}
	want, got := stepOld(base), stepOld(shd)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("sharded Step differs at %d: %g vs %g", v, got[v], want[v])
		}
	}

	// PageRank through the analytics driver (float trajectory: allow
	// rounding noise from the different reduction orders).
	prOpt := ihtl.PageRankOptions{MaxIters: 10, Tol: -1}
	wantPR, err := ihtl.PageRank(base, pool, prOpt)
	if err != nil {
		t.Fatal(err)
	}
	gotPR, err := ihtl.PageRank(shd, pool, prOpt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantPR {
		if math.Abs(wantPR[v]-gotPR[v]) > 1e-12 {
			t.Fatalf("sharded PageRank differs at %d: %g vs %g", v, gotPR[v], wantPR[v])
		}
	}

	// Personalized PageRank exercises the batched sharded path.
	sources := []ihtl.VID{1, 7, 19}
	wantPPR, err := ihtl.PersonalizedPageRank(base, pool, sources, prOpt)
	if err != nil {
		t.Fatal(err)
	}
	gotPPR, err := ihtl.PersonalizedPageRank(shd, pool, sources, prOpt)
	if err != nil {
		t.Fatal(err)
	}
	for j := range sources {
		for v := range wantPPR[j] {
			if math.Abs(wantPPR[j][v]-gotPPR[j][v]) > 1e-12 {
				t.Fatalf("sharded PPR source %d differs at %d: %g vs %g",
					sources[j], v, gotPPR[j][v], wantPPR[j][v])
			}
		}
	}
}

func requireSameGraph(t *testing.T, label string, want, got *ihtl.Graph) {
	t.Helper()
	if got.NumV != want.NumV || got.NumE != want.NumE {
		t.Fatalf("%s: NumV/NumE = %d/%d, want %d/%d", label, got.NumV, got.NumE, want.NumV, want.NumE)
	}
	for v := 0; v < want.NumV; v++ {
		wo, go_ := want.Out(ihtl.VID(v)), got.Out(ihtl.VID(v))
		if len(wo) != len(go_) {
			t.Fatalf("%s: Out(%d) length %d, want %d", label, v, len(go_), len(wo))
		}
		for i := range wo {
			if wo[i] != go_[i] {
				t.Fatalf("%s: Out(%d)[%d] = %d, want %d", label, v, i, go_[i], wo[i])
			}
		}
	}
}
