// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4) at test scale, one benchmark per artefact, plus the
// ablation benches of DESIGN.md §6. Full-scale runs with paper-style
// table output live in cmd/ihtlbench.
package ihtl_test

import (
	"fmt"
	"sync"
	"testing"

	"ihtl/internal/analytics"
	"ihtl/internal/bench"
	"ihtl/internal/cache"
	"ihtl/internal/core"
	"ihtl/internal/gen"
	"ihtl/internal/graph"
	"ihtl/internal/order"
	"ihtl/internal/sched"
	"ihtl/internal/spmv"
	"ihtl/internal/stats"
)

var (
	benchOnce   sync.Once
	benchSocial *graph.Graph // R-MAT, reciprocal hubs (social analog)
	benchWeb    *graph.Graph // asymmetric in-hubs (web analog)
	benchPool   *sched.Pool
	benchCache  cache.Config
	benchB      int // hubs per flipped block, derived from scaled L2
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := gen.DefaultRMAT(15, 16, 1001)
		cfg.Reciprocity = 0.7
		var err error
		if benchSocial, err = gen.RMAT(cfg); err != nil {
			panic(err)
		}
		if benchWeb, err = gen.Web(gen.DefaultWeb(100_000, 1002)); err != nil {
			panic(err)
		}
		benchPool = sched.NewPool(0)
		// Match the harness geometry (internal/bench.NewEnv): the
		// paper's Xeon scaled ~64x so the analog graphs exceed the
		// simulated LLC the way the paper's graphs exceed the real one.
		benchCache = cache.Config{
			LineSize: 64,
			Levels: []cache.LevelConfig{
				{SizeBytes: 4 << 10, Ways: 8},
				{SizeBytes: 16 << 10, Ways: 16},
				{SizeBytes: 512 << 10, Ways: 8},
			},
			ModelPrefetch: true,
		}
		benchB = benchCache.Levels[1].SizeBytes / spmv.VertexBytes
	})
}

func buildIHTL(b *testing.B, g *graph.Graph) (*core.IHTL, *core.Engine) {
	b.Helper()
	ih, err := core.Build(g, core.Params{HubsPerBlock: benchB})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEngine(ih, benchPool)
	if err != nil {
		b.Fatal(err)
	}
	return ih, e
}

func stepVectors(g *graph.Graph) (src, dst []float64) {
	src = make([]float64, g.NumV)
	dst = make([]float64, g.NumV)
	for i := range src {
		src[i] = 1 / float64(g.NumV)
	}
	return src, dst
}

func benchStepper(b *testing.B, g *graph.Graph, s spmv.Stepper) {
	b.Helper()
	src, dst := stepVectors(g)
	b.SetBytes(g.NumE * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(src, dst)
		src, dst = dst, src
	}
}

// BenchmarkFig7 regenerates Figure 7: per-iteration SpMV time of each
// traversal engine on the social analog.
func BenchmarkFig7(b *testing.B) {
	benchSetup(b)
	for _, dir := range []spmv.Direction{spmv.Pull, spmv.PushAtomic, spmv.PushBuffered, spmv.PushPartitioned} {
		dir := dir
		b.Run(dir.String(), func(b *testing.B) {
			e, err := spmv.NewEngine(benchSocial, benchPool, dir, spmv.Options{})
			if err != nil {
				b.Fatal(err)
			}
			benchStepper(b, benchSocial, e)
		})
	}
	b.Run("ihtl", func(b *testing.B) {
		_, e := buildIHTL(b, benchSocial)
		benchStepper(b, benchSocial, e)
	})
}

// BenchmarkTable2 regenerates Table 2's numerator: the iHTL
// preprocessing (graph construction) cost.
func BenchmarkTable2(b *testing.B) {
	benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(benchSocial, core.Params{HubsPerBlock: benchB}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3: one cache-simulated iteration
// under pull and under iHTL, reporting misses as custom metrics.
func BenchmarkTable3(b *testing.B) {
	benchSetup(b)
	b.Run("pull", func(b *testing.B) {
		var last spmv.SimStats
		for i := 0; i < b.N; i++ {
			last, _ = spmv.SimulatePull(benchWeb, benchCache, false)
		}
		b.ReportMetric(float64(last.L3.Misses), "L3miss")
		b.ReportMetric(float64(last.L2.Misses), "L2miss")
	})
	b.Run("ihtl", func(b *testing.B) {
		ih, _ := buildIHTL(b, benchWeb)
		var last spmv.SimStats
		for i := 0; i < b.N; i++ {
			last, _ = core.SimulateStep(ih, benchWeb, benchCache, false)
		}
		b.ReportMetric(float64(last.L3.Misses), "L3miss")
		b.ReportMetric(float64(last.L2.Misses), "L2miss")
	})
}

// BenchmarkTable4 regenerates Table 4: topology-size accounting
// (reported as a metric; the build dominates the time).
func BenchmarkTable4(b *testing.B) {
	benchSetup(b)
	var overhead float64
	for i := 0; i < b.N; i++ {
		ih, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB})
		if err != nil {
			b.Fatal(err)
		}
		overhead = ih.Stats(benchWeb).OverheadFrac
	}
	b.ReportMetric(overhead*100, "topo-overhead-%")
}

// BenchmarkTable5 regenerates Table 5's execution breakdown: timed
// iHTL iterations with the flipped/merge/sparse phase split.
func BenchmarkTable5(b *testing.B) {
	benchSetup(b)
	ih, e := buildIHTL(b, benchSocial)
	src, dst := stepVectors(benchSocial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step(src, dst)
		src, dst = dst, src
	}
	b.StopTimer()
	exec := ih.ExecStats(e.TakeBreakdown())
	b.ReportMetric(exec.FlippedTimeFrac*100, "FBtime-%")
	b.ReportMetric(exec.MergeTimeFrac*100, "merge-%")
	b.ReportMetric(exec.FlippedSpeed, "FBspeed")
}

// BenchmarkTable6 regenerates Table 6: the buffer-size sweep.
func BenchmarkTable6(b *testing.B) {
	benchSetup(b)
	l1 := benchCache.Levels[0].SizeBytes
	l2 := benchCache.Levels[1].SizeBytes
	for _, p := range []struct {
		name  string
		bytes int
	}{
		{"L1", l1}, {"L2half", l2 / 2}, {"L2", l2}, {"L2x2", l2 * 2},
	} {
		p := p
		b.Run(p.name, func(b *testing.B) {
			ih, err := core.Build(benchSocial, core.Params{CacheBytes: p.bytes})
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(ih, benchPool)
			if err != nil {
				b.Fatal(err)
			}
			benchStepper(b, benchSocial, e)
		})
	}
}

// BenchmarkFig1 regenerates Figure 1: cache-simulated pull and iHTL
// with per-degree miss attribution.
func BenchmarkFig1(b *testing.B) {
	benchSetup(b)
	b.Run("pull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmv.SimulatePull(benchWeb, benchCache, true)
		}
	})
	b.Run("ihtl", func(b *testing.B) {
		ih, _ := buildIHTL(b, benchWeb)
		for i := 0; i < b.N; i++ {
			core.SimulateStep(ih, benchWeb, benchCache, true)
		}
	})
}

// BenchmarkFig8 regenerates Figure 8: relabeling preprocessing plus
// pull iteration after relabeling, per algorithm (GOrder on a reduced
// graph as in the paper's own size caps).
func BenchmarkFig8(b *testing.B) {
	benchSetup(b)
	small, err := gen.RMAT(gen.DefaultRMAT(12, 8, 1003))
	if err != nil {
		b.Fatal(err)
	}
	algs := []order.Algorithm{order.SlashBurn{}, order.RabbitOrder{}}
	for _, alg := range algs {
		alg := alg
		b.Run("pre-"+alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Permutation(benchSocial)
			}
		})
	}
	b.Run("pre-gorder-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			order.GOrder{}.Permutation(small)
		}
	})
	b.Run("pre-ihtl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(benchSocial, core.Params{HubsPerBlock: benchB}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pull-after-rabbit", func(b *testing.B) {
		perm := order.RabbitOrder{}.Permutation(benchSocial)
		rg, err := graph.Relabel(benchSocial, perm)
		if err != nil {
			b.Fatal(err)
		}
		e, err := spmv.NewEngine(rg, benchPool, spmv.Pull, spmv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchStepper(b, rg, e)
	})
}

// BenchmarkFig9 regenerates Figure 9: asymmetricity-by-degree on the
// social and web analogs.
func BenchmarkFig9(b *testing.B) {
	benchSetup(b)
	var socAsym, webAsym float64
	for i := 0; i < b.N; i++ {
		socAsym = stats.HubAsymmetricity(benchSocial, 100)
		webAsym = stats.HubAsymmetricity(benchWeb, 100)
	}
	b.ReportMetric(socAsym, "social-hub-asym")
	b.ReportMetric(webAsym, "web-hub-asym")
}

// BenchmarkPageRankEndToEnd measures the full application the paper
// evaluates, over the iHTL engine.
func BenchmarkPageRankEndToEnd(b *testing.B) {
	benchSetup(b)
	ih, e := buildIHTL(b, benchSocial)
	deg := make([]int, benchSocial.NumV)
	for nv := range deg {
		deg[nv] = benchSocial.OutDegree(ih.OldID[nv])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analytics.RunPageRank(e, deg, benchPool,
			analytics.PageRankOptions{MaxIters: 5, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAtomicFlipped ablates §3.4's buffering choice:
// flipped blocks processed via CAS into hub data vs per-thread
// buffers (DESIGN.md ablation 1).
func BenchmarkAblationAtomicFlipped(b *testing.B) {
	benchSetup(b)
	ih, err := core.Build(benchSocial, core.Params{HubsPerBlock: benchB})
	if err != nil {
		b.Fatal(err)
	}
	for _, opt := range []struct {
		name   string
		atomic bool
	}{{"buffered", false}, {"atomic", true}} {
		opt := opt
		b.Run(opt.name, func(b *testing.B) {
			e, err := core.NewEngineOpts(ih, benchPool, core.EngineOptions{AtomicFlipped: opt.atomic})
			if err != nil {
				b.Fatal(err)
			}
			benchStepper(b, benchSocial, e)
		})
	}
}

// BenchmarkStepPipeline ablates the fused single-dispatch Step
// against the pre-fusion three-dispatch pipeline, at a small scale
// where per-dispatch overhead dominates and at a large scale where
// edge traversal does. 8 workers matches the paper-style setup; the
// PageRank variants measure full application iterations (Step plus
// the fused element-wise epilogue).
func BenchmarkStepPipeline(b *testing.B) {
	pool := sched.NewPool(8)
	defer pool.Close()
	for _, sc := range []struct {
		name  string
		scale int
	}{{"scale10", 10}, {"scale12", 12}, {"scale18", 18}} {
		g, err := gen.RMAT(gen.DefaultRMAT(sc.scale, 16, 77))
		if err != nil {
			b.Fatal(err)
		}
		ih, err := core.Build(g, core.Params{HubsPerBlock: 2048})
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name   string
			phased bool
		}{{"fused", false}, {"phased", true}} {
			e, err := core.NewEngineOpts(ih, pool, core.EngineOptions{Phased: mode.phased})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(sc.name+"/step-"+mode.name, func(b *testing.B) {
				benchStepper(b, g, e)
			})
			deg := make([]int, g.NumV)
			for nv := range deg {
				deg[nv] = g.OutDegree(ih.OldID[nv])
			}
			b.Run(sc.name+"/pagerank-"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := analytics.RunPageRank(e, deg, pool,
						analytics.PageRankOptions{MaxIters: 5, Tol: -1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStepBatch sweeps the batch width over the scale-18 R-MAT:
// K interleaved vectors advanced by one shared edge traversal, for the
// fused iHTL engine (rebuilt per width with Params.ForBatch so the
// K-wide hub buffers keep the scalar cache budget) and the pull
// baseline. The reported Medge-per-vec/s metric — edge-lane throughput
// per vector — is the figure of merit: it must rise with K while the
// index stream amortises, then flatten once lane arithmetic dominates.
func BenchmarkStepBatch(b *testing.B) {
	pool := sched.NewPool(8)
	defer pool.Close()
	g, err := gen.RMAT(gen.DefaultRMAT(18, 16, 118))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e spmv.BatchStepper, k int) {
		src := make([]float64, g.NumV*k)
		dst := make([]float64, g.NumV*k)
		for i := range src {
			src[i] = 1 / float64(g.NumV)
		}
		b.SetBytes(g.NumE * 4 * int64(k))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.StepBatch(src, dst, k)
			src, dst = dst, src
		}
		b.StopTimer()
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(g.NumE)*float64(k)/nsPerOp*1e3, "Medge-per-vec/s")
	}
	for _, k := range bench.BatchKs() {
		k := k
		b.Run(fmt.Sprintf("ihtl/k%d", k), func(b *testing.B) {
			ih, err := core.Build(g, core.Params{HubsPerBlock: 2048}.ForBatch(k))
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(ih, pool)
			if err != nil {
				b.Fatal(err)
			}
			run(b, e, k)
		})
		b.Run(fmt.Sprintf("pull/k%d", k), func(b *testing.B) {
			e, err := spmv.NewEngine(g, pool, spmv.Pull, spmv.Options{})
			if err != nil {
				b.Fatal(err)
			}
			run(b, e, k)
		})
	}
}

// BenchmarkSparseKernel ablates the sparse-block kernel three ways —
// the paper's uniform pull, the degree-aware pull schedule, and the
// two-phase propagation-blocked kernel (DESIGN.md §12) — on both
// analogs. The web analog is the interesting one: its sparse block
// holds most of the edges, so the sparse kernel dominates the step.
func BenchmarkSparseKernel(b *testing.B) {
	benchSetup(b)
	for _, gr := range []struct {
		name string
		g    *graph.Graph
	}{{"social", benchSocial}, {"web", benchWeb}} {
		ih, err := core.Build(gr.g, core.Params{HubsPerBlock: benchB})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []core.SparseKernel{core.SparsePull, core.SparsePullDegree, core.SparsePB} {
			k := k
			b.Run(gr.name+"/"+k.String(), func(b *testing.B) {
				e, err := core.NewEngineOpts(ih, benchPool, core.EngineOptions{SparseKernel: k})
				if err != nil {
					b.Fatal(err)
				}
				benchStepper(b, gr.g, e)
				br := e.TakeBreakdown()
				if br.Steps > 0 {
					b.ReportMetric(float64(br.SparseTotalBusy().Nanoseconds())/float64(br.Steps)/1e3, "sparse-us")
				}
			})
		}
	}
}

// BenchmarkAblationBlockThreshold ablates §3.3's 50% FV admission
// threshold (DESIGN.md ablation 2).
func BenchmarkAblationBlockThreshold(b *testing.B) {
	benchSetup(b)
	for _, th := range []float64{0.25, 0.5, 0.75} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			ih, err := core.Build(benchSocial, core.Params{HubsPerBlock: benchB / 4, FVThreshold: th})
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(ih, benchPool)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(ih.Blocks)), "blocks")
			benchStepper(b, benchSocial, e)
		})
	}
}

func thName(th float64) string {
	switch th {
	case 0.25:
		return "th25"
	case 0.5:
		return "th50"
	default:
		return "th75"
	}
}

// BenchmarkAblationDegreeSortVWEH ablates §5.4's order preservation:
// degree-sorting the VWEH/FV classes vs keeping the initial order
// (DESIGN.md ablation 4).
func BenchmarkAblationDegreeSortVWEH(b *testing.B) {
	benchSetup(b)
	for _, opt := range []struct {
		name string
		sort bool
	}{{"order-preserving", false}, {"degree-sorted", true}} {
		opt := opt
		b.Run(opt.name, func(b *testing.B) {
			ih, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB, DegreeSortClasses: opt.sort})
			if err != nil {
				b.Fatal(err)
			}
			e, err := core.NewEngine(ih, benchPool)
			if err != nil {
				b.Fatal(err)
			}
			benchStepper(b, benchWeb, e)
		})
	}
}

// BenchmarkIHTLBuild isolates preprocessing scalability on the web
// analog (complements BenchmarkTable2's social graph).
func BenchmarkIHTLBuild(b *testing.B) {
	benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild measures the end-to-end preprocessing pipeline on
// the scale-18 R-MAT acceptance graph, sequential vs an 8-worker
// pool: graph/* is the edge-list → dual CSR/CSC build (counting
// sorts, adjacency sort, dedup, zero-degree compaction), core/* is
// the iHTL construction (rank, select, relabel, blocks). The parallel
// variants are bit-for-bit identical to the sequential ones — see
// TestBuildParallelDeterminism and TestBuildWithParallelDeterminism —
// so seq vs par here is a pure wall-clock comparison.
func BenchmarkBuild(b *testing.B) {
	pool := sched.NewPool(8)
	defer pool.Close()
	g, err := gen.RMAT(gen.DefaultRMAT(18, 16, 118))
	if err != nil {
		b.Fatal(err)
	}
	edges := g.Edges(nil)
	for _, m := range []struct {
		name string
		pool *sched.Pool
	}{{"seq", nil}, {"par", pool}} {
		b.Run("graph/"+m.name, func(b *testing.B) {
			opt := graph.DefaultBuildOptions()
			opt.Pool = m.pool
			b.SetBytes(g.NumE * 8)
			for i := 0; i < b.N; i++ {
				if _, err := graph.Build(g.NumV, edges, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("core/"+m.name, func(b *testing.B) {
			b.SetBytes(g.NumE * 8)
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildWith(g, core.Params{HubsPerBlock: 2048}, m.pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHarnessSmall runs the full experiment dispatcher on the
// small registry — an end-to-end smoke benchmark of the harness
// itself.
func BenchmarkHarnessSmall(b *testing.B) {
	env := bench.NewEnv(0)
	defer env.Close()
	env.Iters = 2
	ds := bench.SmallRegistry()[:2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(env, "table4", ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFastSelect compares the exact §3.3 block-count
// procedure against the §6 single-pass estimate, on construction time.
func BenchmarkAblationFastSelect(b *testing.B) {
	benchSetup(b)
	for _, opt := range []struct {
		name string
		fast bool
	}{{"exact", false}, {"fast", true}} {
		opt := opt
		b.Run(opt.name, func(b *testing.B) {
			var blocks int
			for i := 0; i < b.N; i++ {
				ih, err := core.Build(benchSocial, core.Params{HubsPerBlock: benchB / 8, FastSelect: opt.fast})
				if err != nil {
					b.Fatal(err)
				}
				blocks = len(ih.Blocks)
			}
			b.ReportMetric(float64(blocks), "blocks")
		})
	}
}

// BenchmarkExtensionSparseOrder measures the §6 Rabbit-Order-on-the-
// sparse-block extension: build cost and iteration time vs plain iHTL.
func BenchmarkExtensionSparseOrder(b *testing.B) {
	benchSetup(b)
	b.Run("build-plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build-rabbit-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB, SparseOrder: order.RabbitOrder{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step-rabbit-sparse", func(b *testing.B) {
		ih, err := core.Build(benchWeb, core.Params{HubsPerBlock: benchB, SparseOrder: order.RabbitOrder{}})
		if err != nil {
			b.Fatal(err)
		}
		e, err := core.NewEngine(ih, benchPool)
		if err != nil {
			b.Fatal(err)
		}
		benchStepper(b, benchWeb, e)
	})
}

// BenchmarkMulticoreSim sweeps worker counts over the multi-core
// cache simulation (private L1/L2 per core, shared L3) — §3.4's
// private-buffer design point — reporting shared-L3 misses for pull
// vs iHTL as metrics.
func BenchmarkMulticoreSim(b *testing.B) {
	benchSetup(b)
	ih, err := core.Build(benchWeb, core.Params{CacheBytes: benchCache.Levels[1].SizeBytes})
	if err != nil {
		b.Fatal(err)
	}
	for _, cores := range []int{1, 4, 16} {
		cores := cores
		b.Run(coresName(cores), func(b *testing.B) {
			var pullL3, ihtlL3 uint64
			for i := 0; i < b.N; i++ {
				p, err := core.SimulatePullParallel(benchWeb, benchCache, cores)
				if err != nil {
					b.Fatal(err)
				}
				q, err := core.SimulateStepParallel(ih, benchCache, cores)
				if err != nil {
					b.Fatal(err)
				}
				pullL3, ihtlL3 = p.SharedL3.Misses, q.SharedL3.Misses
			}
			b.ReportMetric(float64(pullL3)/1000, "pull-L3k")
			b.ReportMetric(float64(ihtlL3)/1000, "ihtl-L3k")
		})
	}
}

func coresName(c int) string {
	switch c {
	case 1:
		return "1core"
	case 4:
		return "4core"
	default:
		return "16core"
	}
}
