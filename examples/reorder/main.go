// Reorder reproduces the paper's Figure 8 trade-off on one graph:
// locality-optimizing relabeling algorithms (SlashBurn, GOrder,
// Rabbit-Order) improve pull traversal but cost orders of magnitude
// more preprocessing than iHTL — and iHTL's traversal is still
// faster, because relabeling cannot fix hub locality.
//
//	go run ./examples/reorder
package main

import (
	"fmt"
	"log"
	"time"

	"ihtl"
)

func main() {
	g, err := ihtl.GenerateRMAT(14, 12, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumV, g.NumE)

	pool := ihtl.NewPool(0)
	defer pool.Close()
	opt := ihtl.PageRankOptions{MaxIters: 10, Tol: -1}

	measure := func(name string, pre time.Duration, g2 *ihtl.Graph) {
		eng, err := ihtl.NewBaselineEngine(g2, pool, ihtl.Pull)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := ihtl.PageRankBaseline(g2, eng, pool, opt); err != nil {
			log.Fatal(err)
		}
		iter := time.Since(start) / time.Duration(opt.MaxIters)
		fmt.Printf("%-22s preprocess %10.1f ms    pull iteration %8.3f ms\n",
			name, pre.Seconds()*1000, iter.Seconds()*1000)
	}

	measure("original order", 0, g)
	for _, alg := range []ihtl.ReorderAlgorithm{ihtl.ReorderDegree, ihtl.ReorderSlashBurn, ihtl.ReorderGOrder, ihtl.ReorderRabbit} {
		start := time.Now()
		rg, _, err := ihtl.Reorder(g, alg)
		if err != nil {
			log.Fatal(err)
		}
		measure(string(alg)+" + pull", time.Since(start), rg)
	}

	start := time.Now()
	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 4096})
	if err != nil {
		log.Fatal(err)
	}
	pre := time.Since(start)
	runStart := time.Now()
	if _, err := ihtl.PageRank(eng, pool, opt); err != nil {
		log.Fatal(err)
	}
	iter := time.Since(runStart) / time.Duration(opt.MaxIters)
	fmt.Printf("%-22s preprocess %10.1f ms    iHTL iteration %8.3f ms\n",
		"iHTL", pre.Seconds()*1000, iter.Seconds()*1000)
}
