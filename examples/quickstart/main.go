// Quickstart: generate a power-law graph, build the iHTL engine, run
// PageRank, and print what iHTL did with the graph structure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"ihtl"
)

func main() {
	pool := ihtl.NewPool(0) // one worker per core
	defer pool.Close()

	// A social-network-like graph: 2^16 vertices, ~1M edges, skewed
	// in-degrees. The pool parallelises the CSR/CSC build.
	g, err := ihtl.GenerateRMATOn(pool, 16, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumV, g.NumE)

	// Build the iHTL engine. HubsPerBlock 0 would use the paper's
	// 1 MiB L2 default; for a graph this size a few thousand hubs per
	// block keeps the buffers cache-resident. Preprocessing (hub
	// ranking, relabeling, block construction) runs on the same pool.
	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 4096})
	if err != nil {
		log.Fatal(err)
	}
	ih := eng.IHTL()
	fmt.Printf("iHTL:  %d flipped blocks, %d hubs (%.2f%% of vertices) capture %.1f%% of edges\n",
		len(ih.Blocks), ih.NumHubs,
		100*float64(ih.NumHubs)/float64(ih.NumV),
		100*float64(ih.FlippedEdges())/float64(ih.NumE))
	bs := ih.BuildStats()
	fmt.Printf("build: rank %v, select %v, relabel %v, blocks %v (wall %v)\n",
		bs.Rank, bs.Select, bs.Relabel, bs.Blocks, bs.Wall)

	ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 30})
	if err != nil {
		log.Fatal(err)
	}

	type rv struct {
		v ihtl.VID
		r float64
	}
	top := make([]rv, 0, g.NumV)
	for v, r := range ranks {
		top = append(top, rv{ihtl.VID(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top 5 by PageRank:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  vertex %6d  rank %.3e  in-degree %d\n",
			top[i].v, top[i].r, g.InDegree(top[i].v))
	}
}
