// Analytics: the §6 future-work applications on one graph — BFS,
// connected components, SSSP and triangle counting share the same
// substrates (graph, scheduler) as the iHTL SpMV engine; PageRank and
// HITS run over the engines themselves.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"time"

	"ihtl"
	"ihtl/internal/analytics"
	"ihtl/internal/sched"
)

func main() {
	g, err := ihtl.GenerateRMAT(15, 12, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumV, g.NumE)

	pool := sched.NewPool(0)
	defer pool.Close()

	timed := func(name string, fn func() string) {
		start := time.Now()
		result := fn()
		fmt.Printf("%-22s %10.1f ms   %s\n", name, time.Since(start).Seconds()*1000, result)
	}

	timed("BFS from 0", func() string {
		dist := analytics.BFS(g, pool, 0)
		reached, max := 0, int64(0)
		for _, d := range dist {
			if d != analytics.InfDist {
				reached++
				if d > max {
					max = d
				}
			}
		}
		return fmt.Sprintf("reached %d vertices, diameter >= %d", reached, max)
	})

	timed("connected components", func() string {
		cc := analytics.ConnectedComponents(g, pool)
		labels := map[ihtl.VID]bool{}
		for _, l := range cc {
			labels[l] = true
		}
		return fmt.Sprintf("%d components", len(labels))
	})

	timed("SSSP from 0", func() string {
		dist := analytics.SSSP(g, pool, 0)
		var max int64
		for _, d := range dist {
			if d != analytics.InfDist && d > max {
				max = d
			}
		}
		return fmt.Sprintf("max weighted distance %d", max)
	})

	timed("triangle count", func() string {
		return fmt.Sprintf("%d triangles", analytics.TriangleCount(g, pool))
	})

	timed("PageRank (iHTL)", func() string {
		eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 2048})
		if err != nil {
			log.Fatal(err)
		}
		ranks, err := ihtl.PageRank(eng, pool, ihtl.PageRankOptions{MaxIters: 20})
		if err != nil {
			log.Fatal(err)
		}
		best, bestV := 0.0, ihtl.VID(0)
		for v, r := range ranks {
			if r > best {
				best, bestV = r, ihtl.VID(v)
			}
		}
		return fmt.Sprintf("top vertex %d (rank %.2e)", bestV, best)
	})
}
