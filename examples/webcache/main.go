// Webcache reproduces the paper's Figure 1 story on a web-like graph:
// the LLC miss rate of pull traversal conditional on vertex in-degree
// climbs steeply for hubs, and iHTL flattens it by flipping hub
// in-edges to push direction.
//
//	go run ./examples/webcache
package main

import (
	"fmt"
	"log"

	"ihtl"
)

func main() {
	g, err := ihtl.GenerateWeb(120_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	sum := ihtl.SummarizeInDegrees(g)
	fmt.Printf("web graph: %d vertices, %d edges, max in-degree %d (hub asymmetricity %.2f)\n\n",
		g.NumV, g.NumE, sum.Max, ihtl.HubAsymmetricity(g, 100))

	// Scale the paper's Xeon geometry down 32x so this ~100k-vertex
	// graph stands in the same cache:data regime as the paper's
	// multi-billion-edge graphs on the real machine.
	cfg := ihtl.ScaledCacheConfig(32)

	_, pullBuckets := ihtl.SimulatePullLocality(g, cfg)
	_, ihtlBuckets, err := ihtl.SimulateIHTLLocality(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LLC miss rate by vertex in-degree (Figure 1):")
	fmt.Printf("%-18s %12s %12s\n", "in-degree", "pull", "iHTL")
	n := len(pullBuckets)
	if len(ihtlBuckets) > n {
		n = len(ihtlBuckets)
	}
	for b := 0; b < n; b++ {
		var pull, ih string
		if b < len(pullBuckets) && pullBuckets[b].Vertices > 0 {
			pull = fmt.Sprintf("%.3f", pullBuckets[b].MissRate())
		}
		if b < len(ihtlBuckets) && ihtlBuckets[b].Vertices > 0 {
			ih = fmt.Sprintf("%.3f", ihtlBuckets[b].MissRate())
		}
		if pull == "" && ih == "" {
			continue
		}
		lo := 1 << uint(b)
		fmt.Printf("[%7d,%7d) %12s %12s\n", lo, lo*2, pull, ih)
	}
	fmt.Println("\npull thrashes on hubs (bottom rows); iHTL keeps hub accesses cache-resident.")
}
