// Socialrank reproduces the paper's Figure 7 story on one
// social-network-like graph: the same PageRank computed by push, pull
// and iHTL engines, timing each and checking they agree.
//
//	go run ./examples/socialrank
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ihtl"
)

func main() {
	g, err := ihtl.GenerateRMAT(17, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumV, g.NumE)

	pool := ihtl.NewPool(0)
	defer pool.Close()
	opt := ihtl.PageRankOptions{MaxIters: 20, Tol: -1}

	var reference []float64
	run := func(name string, compute func() ([]float64, error)) {
		start := time.Now()
		ranks, err := compute()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		status := "reference"
		if reference == nil {
			reference = ranks
		} else {
			maxDiff := 0.0
			for v := range ranks {
				if d := math.Abs(ranks[v] - reference[v]); d > maxDiff {
					maxDiff = d
				}
			}
			status = fmt.Sprintf("max diff vs pull %.1e", maxDiff)
		}
		fmt.Printf("%-16s %7.2f ms/iter   (%s)\n",
			name, elapsed.Seconds()*1000/float64(opt.MaxIters), status)
	}

	for _, dir := range []ihtl.Direction{ihtl.Pull, ihtl.PushAtomic, ihtl.PushBuffered, ihtl.PushPartitioned} {
		dir := dir
		eng, err := ihtl.NewBaselineEngine(g, pool, dir)
		if err != nil {
			log.Fatal(err)
		}
		run(dir.String(), func() ([]float64, error) {
			return ihtl.PageRankBaseline(g, eng, pool, opt)
		})
	}

	buildStart := time.Now()
	eng, err := ihtl.NewEngine(g, pool, ihtl.Params{HubsPerBlock: 8192})
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(buildStart)
	run("ihtl", func() ([]float64, error) { return ihtl.PageRank(eng, pool, opt) })
	fmt.Printf("\niHTL preprocessing: %.1f ms (amortised across iterations and runs)\n",
		build.Seconds()*1000)
}
