// Semiring: the paper's §6 thesis — "the idea that irregular datasets
// require irregular traversals is not limited to pull traversal" — in
// action: shortest paths, hop distances, reachability and connected
// components all computed by iterated semiring SpMV over the SAME
// iHTL engine machinery that accelerates PageRank, through the public
// API.
//
//	go run ./examples/semiring
package main

import (
	"fmt"
	"log"
	"time"

	"ihtl"
)

func main() {
	g, err := ihtl.GenerateRMAT(14, 10, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumV, g.NumE)

	pool := ihtl.NewPool(0)
	defer pool.Close()
	params := ihtl.Params{HubsPerBlock: 2048}

	start := time.Now()
	hops, err := ihtl.HopDistances(g, pool, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	report("hop distances (min monoid)", hops, start)

	start = time.Now()
	// Deterministic pseudo-weights in [1,16].
	weight := func(u, v ihtl.VID) int64 { return int64((uint64(u)*2654435761+uint64(v))%16) + 1 }
	dist, err := ihtl.ShortestPaths(g, pool, params, 0, weight)
	if err != nil {
		log.Fatal(err)
	}
	report("shortest paths (min-plus semiring)", dist, start)

	start = time.Now()
	reach, err := ihtl.Reachability(g, pool, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, r := range reach {
		if r {
			n++
		}
	}
	fmt.Printf("%-36s %8.1f ms   %d vertices reachable\n",
		"reachability (boolean-or monoid)", time.Since(start).Seconds()*1000, n)

	start = time.Now()
	cc, err := ihtl.Components(g, pool, params)
	if err != nil {
		log.Fatal(err)
	}
	labels := map[ihtl.VID]bool{}
	for _, l := range cc {
		labels[l] = true
	}
	fmt.Printf("%-36s %8.1f ms   %d components\n",
		"components (min-label monoid)", time.Since(start).Seconds()*1000, len(labels))
}

func report(name string, dist []int64, start time.Time) {
	reached, max := 0, int64(0)
	for _, d := range dist {
		if d != ihtl.InfDist {
			reached++
			if d > max {
				max = d
			}
		}
	}
	fmt.Printf("%-36s %8.1f ms   reached %d, max %d\n",
		name, time.Since(start).Seconds()*1000, reached, max)
}
