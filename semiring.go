package ihtl

import (
	"fmt"

	"ihtl/internal/analytics"
	"ihtl/internal/core"
	"ihtl/internal/spmv"
)

// The §6 semiring analytics through the public API: shortest paths,
// hop distances and reachability computed by iterated monoid SpMV
// over the iHTL engine, with the relabeling handled internally so all
// inputs and outputs use original vertex IDs.

// InfDist marks unreachable vertices in distance results.
const InfDist = analytics.InfDist

// relabeled adapts an iHTL generic engine to original-ID semantics.
type relabeled[T any] struct {
	ih *core.IHTL
	e  *core.GenericEngine[T]
	ns []T
	nd []T
}

func (r *relabeled[T]) NumVertices() int { return r.e.NumVertices() }

func (r *relabeled[T]) StepMonoid(src, dst []T) {
	n := r.e.NumVertices()
	for v := 0; v < n; v++ {
		r.ns[r.ih.NewID[v]] = src[v]
	}
	r.e.StepMonoid(r.ns, r.nd)
	for v := 0; v < n; v++ {
		dst[v] = r.nd[r.ih.NewID[v]]
	}
}

func newRelabeled[T any](g *Graph, pool *Pool, p Params, m spmv.Monoid[T]) (*relabeled[T], error) {
	ih, err := core.Build(g, p)
	if err != nil {
		return nil, err
	}
	e, err := core.NewGenericEngine(ih, pool, m)
	if err != nil {
		return nil, err
	}
	n := ih.NumV
	return &relabeled[T]{ih: ih, e: e, ns: make([]T, n), nd: make([]T, n)}, nil
}

// ShortestPaths computes single-source shortest paths from src over
// weight(u, v) (original IDs; must be non-negative) by iterated
// min-plus semiring SpMV through the iHTL engine. Unreachable
// vertices get InfDist.
func ShortestPaths(g *Graph, pool *Pool, p Params, src VID, weight func(u, v VID) int64) ([]int64, error) {
	if int(src) >= g.NumV {
		return nil, fmt.Errorf("ihtl: source %d out of range", src)
	}
	var ihRef *core.IHTL
	m := spmv.MinPlusInt64(func(s, d VID) int64 {
		return weight(ihRef.OldID[s], ihRef.OldID[d])
	})
	r, err := newRelabeled(g, pool, p, m)
	if err != nil {
		return nil, err
	}
	ihRef = r.ih
	sources := make([]bool, g.NumV)
	sources[src] = true
	return analytics.WeightedDistances(r, sources), nil
}

// HopDistances computes BFS hop distances from src by iterated min
// SpMV through the iHTL engine.
func HopDistances(g *Graph, pool *Pool, p Params, src VID) ([]int64, error) {
	if int(src) >= g.NumV {
		return nil, fmt.Errorf("ihtl: source %d out of range", src)
	}
	r, err := newRelabeled(g, pool, p, spmv.MinInt64())
	if err != nil {
		return nil, err
	}
	sources := make([]bool, g.NumV)
	sources[src] = true
	return analytics.HopDistances(r, sources), nil
}

// Reachability computes the set of vertices reachable from src by
// iterated boolean-or SpMV through the iHTL engine.
func Reachability(g *Graph, pool *Pool, p Params, src VID) ([]bool, error) {
	if int(src) >= g.NumV {
		return nil, fmt.Errorf("ihtl: source %d out of range", src)
	}
	r, err := newRelabeled(g, pool, p, spmv.BoolOr())
	if err != nil {
		return nil, err
	}
	sources := make([]bool, g.NumV)
	sources[src] = true
	return analytics.Reachable(r, sources), nil
}

// Components labels weakly connected components by iterated min-label
// SpMV through the iHTL engine, built over the symmetrised graph.
// The result maps each vertex to the smallest original vertex ID in
// its component.
func Components(g *Graph, pool *Pool, p Params) ([]VID, error) {
	sg := analytics.Symmetrize(g)
	r, err := newRelabeled(sg, pool, p, spmv.MinInt64())
	if err != nil {
		return nil, err
	}
	return analytics.MinLabelComponents(r), nil
}
