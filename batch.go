package ihtl

import (
	"context"
	"fmt"

	"ihtl/internal/analytics"
)

// Batch packs K logical vertex vectors into the vertex-major
// interleaved layout the batched engines consume: lane j of vertex v
// lives at Data[v*K+j], so one edge load drives K contiguous lanes.
// Use SetLane/Lane to move between dense per-vector and interleaved
// form, and NewBatchEngine/Engine.StepBatch to traverse all K lanes
// with a single pass over the topology.
type Batch struct {
	// N is the vertex count, K the number of lanes (vectors).
	N, K int
	// Data is the interleaved payload, length N*K.
	Data []float64
}

// NewBatch allocates a zeroed batch of k vectors over n vertices.
// It panics on an invalid shape (n < 0 or k < 1) — the convenient
// form for literal, known-good dimensions. Code handling untrusted
// dimensions should use NewBatchChecked.
func NewBatch(n, k int) *Batch {
	b, err := NewBatchChecked(n, k)
	if err != nil {
		panic(err)
	}
	return b
}

// NewBatchChecked is NewBatch with the shape validation returned as
// an error instead of a panic.
func NewBatchChecked(n, k int) (*Batch, error) {
	if n < 0 || k < 1 {
		return nil, fmt.Errorf("ihtl: invalid batch shape (%d, %d)", n, k)
	}
	return &Batch{N: n, K: k, Data: make([]float64, n*k)}, nil
}

// At returns lane j of vertex v.
func (b *Batch) At(v, j int) float64 { return b.Data[v*b.K+j] }

// Set stores x into lane j of vertex v.
func (b *Batch) Set(v, j int, x float64) { b.Data[v*b.K+j] = x }

// SetLane scatters a dense vector (length N) into lane j.
func (b *Batch) SetLane(j int, in []float64) {
	if len(in) != b.N {
		panic("ihtl: lane length mismatch")
	}
	for v, x := range in {
		b.Data[v*b.K+j] = x
	}
}

// Lane gathers lane j into out (allocated when nil) and returns it.
func (b *Batch) Lane(j int, out []float64) []float64 {
	if out == nil {
		out = make([]float64, b.N)
	} else if len(out) != b.N {
		panic("ihtl: lane length mismatch")
	}
	for v := range out {
		out[v] = b.Data[v*b.K+j]
	}
	return out
}

// PermuteToNew scatters the batch from original into iHTL ID order.
func (b *Batch) PermuteToNew(ih *IHTL, out *Batch) {
	ih.PermuteToNewBatch(b.Data, out.Data, b.K)
}

// PermuteToOld scatters the batch from iHTL into original ID order.
func (b *Batch) PermuteToOld(ih *IHTL, out *Batch) {
	ih.PermuteToOldBatch(b.Data, out.Data, b.K)
}

// StepBatch computes K interleaved SpMVs — dst.Data[v*k+j] =
// Σ_{u∈N⁻(v)} src.Data[u*k+j] — in one traversal of the topology, in
// iHTL ID space. src and dst must both have shape (NumVertices, k).
// For best locality build the engine with NewBatchEngine (or
// Params.ForBatch) so the K-wide hub buffers stay cache-resident.
func (e *Engine) StepBatch(src, dst *Batch) {
	if src.K != dst.K || src.N != dst.N {
		panic("ihtl: batch shape mismatch")
	}
	e.eng.StepBatch(src.Data, dst.Data, src.K)
}

// StepBatchCtx is StepBatch with the StepCtx failure contract:
// ctx cancellation, worker panics and numeric-health violations
// return errors instead of panicking, and a failed step leaves the
// engine reset for the next clean one. ctx may be nil.
func (e *Engine) StepBatchCtx(ctx context.Context, src, dst *Batch) error {
	if src.K != dst.K || src.N != dst.N {
		return fmt.Errorf("ihtl: batch shape mismatch (%d,%d) vs (%d,%d)", src.N, src.K, dst.N, dst.K)
	}
	return e.eng.StepBatchCtx(ctx, src.Data, dst.Data, src.K)
}

// NewBatchEngine builds an iHTL engine tuned for K-wide batched
// traversal: identical to NewEngine except that the flipped-block
// size B shrinks to CacheBytes/(VertexBytes·k), keeping each
// per-worker K-wide hub buffer inside the same cache budget the
// scalar engine's buffer occupies. The engine still serves scalar
// Step calls (over the smaller blocks).
func NewBatchEngine(g *Graph, pool *Pool, p Params, k int) (*Engine, error) {
	if k < 1 {
		return nil, fmt.Errorf("ihtl: batch width %d < 1", k)
	}
	return NewEngine(g, pool, p.ForBatch(k))
}

// PersonalizedPageRank runs one personalized PageRank per source —
// teleporting to that source only — over the iHTL engine, advancing
// all sources per pool dispatch through batched SpMV. It returns one
// rank vector per source, in ORIGINAL vertex-ID space (the iHTL
// relabeling is applied internally).
func PersonalizedPageRank(e *Engine, pool *Pool, sources []VID, opt PageRankOptions) ([][]float64, error) {
	n := e.NumVertices()
	deg := make([]int, n)
	for nv := 0; nv < n; nv++ {
		deg[nv] = e.g.OutDegree(e.oldID(nv))
	}
	srcNew := make([]int, len(sources))
	for j, s := range sources {
		if int(s) < 0 || int(s) >= n {
			return nil, fmt.Errorf("ihtl: source %d out of range", s)
		}
		srcNew[j] = int(e.newID(s))
	}
	res, err := analytics.RunPersonalizedPageRank(e.eng, deg, pool, srcNew, opt)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(sources))
	lane := make([]float64, n)
	for j := range sources {
		res.Lane(j, lane)
		out[j] = make([]float64, n)
		e.permuteToOld(lane, out[j])
	}
	return out, nil
}
